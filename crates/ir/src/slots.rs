//! Slot-addressed machine states and a compiled expression bytecode.
//!
//! The bounded checker's inner loop evaluates the same small expressions on
//! millions of quantifier points. With the `HashMap<String, _>`-keyed
//! [`State`](crate::interp::State), every variable reference hashes a string
//! and every quantifier binding clones one. This module removes both costs:
//!
//! * [`SlotMap`] — a name → dense-slot resolver. Scalars share one slot
//!   space (a slot has both an integer and a real cell, mirroring the
//!   interpreter's dynamic int-vs-data scalar dispatch); arrays have their
//!   own space. The map only grows, so states built against an older, shorter
//!   map stay valid: an out-of-range slot simply reads as unbound.
//! * [`SlotState`] — flat `Vec`-backed state addressed by slots. Arrays are
//!   `Arc`-shared, so cloning a state (one clone per captured snapshot, one
//!   per VC body execution) is a few flat memcpys plus reference bumps;
//!   arrays are copied only when a store actually mutates them.
//! * [`Compiler`] / [`Program`] — a register-machine bytecode for
//!   [`IrExpr`] and straight-line [`IrStmt`] lists. A compiled program is a
//!   flat op vector over pre-resolved slots; evaluating it allocates
//!   nothing. Compilation is *conservative*: any construct whose evaluation
//!   the bytecode cannot reproduce exactly (conditionals, unknown integer
//!   intrinsics, boolean sub-terms in arithmetic positions) fails to compile
//!   with [`CompileErr`], and callers fall back to the tree-walking
//!   interpreter, which remains the semantic oracle.
//!
//! The String-keyed `State` API is unchanged; [`SlotState::from_state`] and
//! [`SlotState::to_state`] convert between the two representations (the
//! differential tests lean on `to_state` to compare against the oracle).

use crate::error::Error;
use crate::interp::{ArrayData, State};
use crate::ir::{BinOp, CmpOp, IrExpr, IrStmt};
use crate::value::DataValue;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

// ------------------------------------------------------------------ SlotMap

#[derive(Debug, Default)]
struct MapInner {
    scalars: HashMap<String, u32>,
    scalar_names: Vec<String>,
    arrays: HashMap<String, u32>,
    array_names: Vec<String>,
}

/// A thread-safe, grow-only resolver from names to dense slot indices.
///
/// One map is shared by everything participating in a checking session: the
/// captured states, the compiled kernel body, and every compiled VC.
/// Registering a name after states were captured is sound — those states
/// treat the new (out-of-range) slot as unbound, exactly as the hash-map
/// state treats an absent key.
#[derive(Debug, Default)]
pub struct SlotMap {
    inner: RwLock<MapInner>,
}

impl SlotMap {
    /// An empty map.
    pub fn new() -> SlotMap {
        SlotMap::default()
    }

    /// A map pre-registering every parameter, local, and loop counter of a
    /// kernel.
    pub fn for_kernel(kernel: &crate::ir::Kernel) -> SlotMap {
        let map = SlotMap::new();
        for p in kernel.params.iter().chain(&kernel.locals) {
            match &p.kind {
                crate::ir::ParamKind::Array { .. } => {
                    map.array(&p.name);
                }
                _ => {
                    map.scalar(&p.name);
                }
            }
        }
        for var in kernel.loop_vars() {
            map.scalar(&var);
        }
        map
    }

    /// Resolves (registering if new) the scalar slot of `name`.
    pub fn scalar(&self, name: &str) -> u32 {
        if let Some(&s) = self
            .inner
            .read()
            .expect("slot map poisoned")
            .scalars
            .get(name)
        {
            return s;
        }
        let mut inner = self.inner.write().expect("slot map poisoned");
        if let Some(&s) = inner.scalars.get(name) {
            return s;
        }
        let slot = inner.scalar_names.len() as u32;
        inner.scalar_names.push(name.to_string());
        inner.scalars.insert(name.to_string(), slot);
        slot
    }

    /// Resolves (registering if new) the array slot of `name`.
    pub fn array(&self, name: &str) -> u32 {
        if let Some(&s) = self
            .inner
            .read()
            .expect("slot map poisoned")
            .arrays
            .get(name)
        {
            return s;
        }
        let mut inner = self.inner.write().expect("slot map poisoned");
        if let Some(&s) = inner.arrays.get(name) {
            return s;
        }
        let slot = inner.array_names.len() as u32;
        inner.array_names.push(name.to_string());
        inner.arrays.insert(name.to_string(), slot);
        slot
    }

    /// The scalar slot of `name`, if registered.
    pub fn lookup_scalar(&self, name: &str) -> Option<u32> {
        self.inner
            .read()
            .expect("slot map poisoned")
            .scalars
            .get(name)
            .copied()
    }

    /// The array slot of `name`, if registered.
    pub fn lookup_array(&self, name: &str) -> Option<u32> {
        self.inner
            .read()
            .expect("slot map poisoned")
            .arrays
            .get(name)
            .copied()
    }

    /// The name registered at a scalar slot.
    pub fn scalar_name(&self, slot: u32) -> String {
        self.inner.read().expect("slot map poisoned").scalar_names[slot as usize].clone()
    }

    /// The name registered at an array slot.
    pub fn array_name(&self, slot: u32) -> String {
        self.inner.read().expect("slot map poisoned").array_names[slot as usize].clone()
    }

    /// Number of registered scalar names.
    pub fn scalar_count(&self) -> usize {
        self.inner
            .read()
            .expect("slot map poisoned")
            .scalar_names
            .len()
    }

    /// Number of registered array names.
    pub fn array_count(&self) -> usize {
        self.inner
            .read()
            .expect("slot map poisoned")
            .array_names
            .len()
    }
}

// ---------------------------------------------------------------- SlotState

/// A machine state stored in flat slot-indexed vectors.
///
/// Scalar slot `s` has an integer cell (`ints[s]`) and a real cell
/// (`reals[s]`); a bound integer cell makes the scalar "integer-kinded" for
/// the interpreter's dynamic assignment dispatch, mirroring
/// `state.ints.contains_key(name)` on the hash-map state. Arrays are
/// `Arc`-shared and copied on first mutation.
#[derive(Debug, Clone)]
pub struct SlotState<V> {
    map: Arc<SlotMap>,
    /// Integer cells, indexed by scalar slot.
    pub ints: Vec<Option<i64>>,
    /// Real (data-domain) cells, indexed by scalar slot.
    pub reals: Vec<Option<V>>,
    /// Array cells, indexed by array slot.
    pub arrays: Vec<Option<Arc<ArrayData<V>>>>,
}

impl<V: DataValue> SlotState<V> {
    /// An empty state bound to a resolver.
    pub fn new(map: Arc<SlotMap>) -> SlotState<V> {
        SlotState {
            map,
            ints: Vec::new(),
            reals: Vec::new(),
            arrays: Vec::new(),
        }
    }

    /// The resolver this state is addressed by.
    pub fn map(&self) -> &Arc<SlotMap> {
        &self.map
    }

    fn grow_scalar(&mut self, slot: u32) {
        let need = slot as usize + 1;
        if self.ints.len() < need {
            self.ints.resize(need, None);
        }
        if self.reals.len() < need {
            self.reals.resize(need, None);
        }
    }

    /// Binds an integer scalar by name.
    pub fn set_int(&mut self, name: &str, value: i64) {
        let slot = self.map.scalar(name);
        self.set_int_slot(slot, value);
    }

    /// Binds an integer scalar by slot.
    pub fn set_int_slot(&mut self, slot: u32, value: i64) {
        self.grow_scalar(slot);
        self.ints[slot as usize] = Some(value);
    }

    /// Binds the integer cell to 0 when unbound (VC int-scalar seeding).
    pub fn seed_int_slot(&mut self, slot: u32) {
        self.grow_scalar(slot);
        let cell = &mut self.ints[slot as usize];
        if cell.is_none() {
            *cell = Some(0);
        }
    }

    /// Binds a real scalar by name.
    pub fn set_real(&mut self, name: &str, value: V) {
        let slot = self.map.scalar(name);
        self.set_real_slot(slot, value);
    }

    /// Binds a real scalar by slot.
    pub fn set_real_slot(&mut self, slot: u32, value: V) {
        self.grow_scalar(slot);
        self.reals[slot as usize] = Some(value);
    }

    /// Binds an array by name.
    pub fn set_array(&mut self, name: &str, array: ArrayData<V>) {
        let slot = self.map.array(name);
        let need = slot as usize + 1;
        if self.arrays.len() < need {
            self.arrays.resize(need, None);
        }
        self.arrays[slot as usize] = Some(Arc::new(array));
    }

    /// Reads an integer scalar by name.
    pub fn int(&self, name: &str) -> Option<i64> {
        self.map
            .lookup_scalar(name)
            .and_then(|slot| self.int_slot(slot))
    }

    /// Reads an integer cell by slot.
    pub fn int_slot(&self, slot: u32) -> Option<i64> {
        self.ints.get(slot as usize).copied().flatten()
    }

    /// Reads a real cell by slot.
    pub fn real_slot(&self, slot: u32) -> Option<&V> {
        self.reals.get(slot as usize).and_then(Option::as_ref)
    }

    /// Reads an array by name.
    pub fn array(&self, name: &str) -> Option<&ArrayData<V>> {
        self.map
            .lookup_array(name)
            .and_then(|slot| self.array_slot(slot))
    }

    /// Reads an array by slot.
    pub fn array_slot(&self, slot: u32) -> Option<&ArrayData<V>> {
        self.arrays
            .get(slot as usize)
            .and_then(Option::as_ref)
            .map(Arc::as_ref)
    }

    /// Mutable access to an array by slot (copy-on-write when shared).
    pub fn array_slot_mut(&mut self, slot: u32) -> Option<&mut ArrayData<V>> {
        self.arrays
            .get_mut(slot as usize)
            .and_then(Option::as_mut)
            .map(Arc::make_mut)
    }

    /// Builds a slot state from a hash-map state, registering every bound
    /// name in the resolver.
    pub fn from_state(state: &State<V>, map: &Arc<SlotMap>) -> SlotState<V> {
        let mut out = SlotState::new(Arc::clone(map));
        for (name, v) in &state.ints {
            out.set_int(name, *v);
        }
        for (name, v) in &state.reals {
            out.set_real(name, v.clone());
        }
        for (name, arr) in &state.arrays {
            out.set_array(name, arr.clone());
        }
        out
    }

    /// Converts back into a hash-map state (bound cells only).
    pub fn to_state(&self) -> State<V> {
        let mut out = State::new();
        for (slot, cell) in self.ints.iter().enumerate() {
            if let Some(v) = cell {
                out.set_int(self.map.scalar_name(slot as u32), *v);
            }
        }
        for (slot, cell) in self.reals.iter().enumerate() {
            if let Some(v) = cell {
                out.set_real(self.map.scalar_name(slot as u32), v.clone());
            }
        }
        for (slot, cell) in self.arrays.iter().enumerate() {
            if let Some(arr) = cell {
                out.set_array(self.map.array_name(slot as u32), arr.as_ref().clone());
            }
        }
        out
    }
}

// ----------------------------------------------------------------- Runtime

/// A runtime evaluation failure, in slot terms. Rendered into a
/// human-readable [`Error`] via [`EvalErr::render`]; the variants mirror the
/// tree-walking interpreter's failure modes one-to-one so compiled and
/// interpreted evaluation reject identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalErr {
    /// An integer read of an unbound integer cell.
    UnboundInt(u32),
    /// A data read of a scalar with neither cell bound.
    UnboundScalar(u32),
    /// A reference to an unbound array.
    UnboundArray(u32),
    /// An out-of-bounds array read.
    OobLoad(u32),
    /// An out-of-bounds array write.
    OobStore(u32),
    /// An array value used as an index is not integral.
    NotIndex(u32),
    /// A loop with zero step.
    ZeroStep,
    /// The statement budget was exhausted.
    Budget,
}

impl EvalErr {
    /// Renders the failure with names resolved through `map`.
    pub fn render(&self, map: &SlotMap) -> Error {
        match self {
            EvalErr::UnboundInt(s) => Error::interp(format!(
                "unbound integer variable '{}'",
                map.scalar_name(*s)
            )),
            EvalErr::UnboundScalar(s) => {
                Error::interp(format!("unbound variable '{}'", map.scalar_name(*s)))
            }
            EvalErr::UnboundArray(a) => {
                Error::interp(format!("unbound array '{}'", map.array_name(*a)))
            }
            EvalErr::OobLoad(a) => {
                Error::interp(format!("index out of bounds for '{}'", map.array_name(*a)))
            }
            EvalErr::OobStore(a) => Error::interp(format!(
                "store index out of bounds for '{}'",
                map.array_name(*a)
            )),
            EvalErr::NotIndex(_) => {
                Error::interp("data value is not usable as an index".to_string())
            }
            EvalErr::ZeroStep => Error::interp("loop with zero step".to_string()),
            EvalErr::Budget => Error::interp("execution step budget exhausted".to_string()),
        }
    }
}

/// A construct the bytecode cannot evaluate with interpreter-exact
/// semantics; callers fall back to the tree-walking interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileErr(pub String);

impl std::fmt::Display for CompileErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "not compilable: {}", self.0)
    }
}

/// Integer intrinsics of the IR's integer expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntFn {
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `abs(a)`
    Abs,
    /// `mod(a, b)` (Euclidean; zero divisor yields zero)
    Mod,
}

/// One bytecode operation. Register banks: `i` (integers), `d` (data-domain
/// values), `b` (booleans). All operands are pre-resolved register or slot
/// indices; executing an op never allocates.
#[derive(Debug, Clone, Copy)]
pub enum Op {
    /// `i[dst] = v`
    IConst { dst: u16, v: i64 },
    /// `i[dst] = ints[slot]` (error when unbound)
    ISlot { dst: u16, slot: u32 },
    /// `i[dst] = i[src]`
    ICopy { dst: u16, src: u16 },
    /// `i[dst] = i[src] + imm` (fused `var ± constant`, the dominant index
    /// shape of stencils)
    IAddImm { dst: u16, src: u16, imm: i64 },
    /// `i[dst] = i[a] op i[b]` (division is total Euclidean)
    IBin { op: BinOp, dst: u16, a: u16, b: u16 },
    /// `i[dst] = f(i[a], i[b])` (`b` ignored for unary `abs`)
    IFn { f: IntFn, dst: u16, a: u16, b: u16 },
    /// `i[dst] = as_index(arrays[arr][i[idx .. idx+n]])`
    ILoad {
        dst: u16,
        arr: u32,
        idx: u16,
        n: u16,
    },
    /// `d[dst] = pool[k]` (pre-converted constant)
    DConst { dst: u16, k: u16 },
    /// `d[dst] = reals[slot]` when bound, else `from_const(i[src] as f64)`.
    /// The data-position read of an environment-pinned (quantified)
    /// variable: the interpreter binds quantifier values into the *integer*
    /// cells and `eval_data_expr` consults the real cell first, so a real
    /// binding that shadows the quantifier name must win here too.
    DScalarOrReg { dst: u16, slot: u32, src: u16 },
    /// `d[dst] = reals[slot]`, falling back to `from_const(ints[slot])`
    DScalar { dst: u16, slot: u32 },
    /// `d[dst] = d[src]`
    DCopy { dst: u16, src: u16 },
    /// `d[dst] = d[a] op d[b]` (domain arithmetic)
    DBin { op: BinOp, dst: u16, a: u16, b: u16 },
    /// `d[dst] = apply(funcs[f], d[argv .. argv+argc])`
    DCall {
        f: u16,
        dst: u16,
        argv: u16,
        argc: u16,
    },
    /// `d[dst] = arrays[arr][i[idx .. idx+n]]`
    DLoad {
        dst: u16,
        arr: u32,
        idx: u16,
        n: u16,
    },
    /// `b[dst] = i[a] op i[b]`
    BCmp { op: CmpOp, dst: u16, a: u16, b: u16 },
    /// `b[dst] = !b[a]`
    BNot { dst: u16, a: u16 },
    /// `b[dst] = b[src]`
    BCopy { dst: u16, src: u16 },
    /// Short-circuit `&&`: when `!b[cond]`, set `b[dst] = false` and skip
    /// the next `skip` ops (the right operand's code).
    BJumpFalse { cond: u16, dst: u16, skip: u16 },
    /// Short-circuit `||`: when `b[cond]`, set `b[dst] = true` and skip.
    BJumpTrue { cond: u16, dst: u16, skip: u16 },
}

/// Shared tables of a batch of compiled programs: the data-constant pool
/// (as `f64`, converted into the evaluation domain once per [`Scratch`])
/// and the uninterpreted-function name table.
#[derive(Debug, Clone, Default)]
pub struct ProgramSet {
    /// Data constants referenced by [`Op::DConst`].
    pub pool: Vec<f64>,
    /// Function names referenced by [`Op::DCall`].
    pub funcs: Vec<String>,
}

/// A compiled expression: a flat op list and the register holding the
/// result, plus the register-bank sizes the scratch space must provide.
#[derive(Debug, Clone)]
pub struct Program {
    ops: Vec<Op>,
    /// Result register (in the bank implied by how the program was built).
    pub result: u16,
    iregs: u16,
    dregs: u16,
    bregs: u16,
}

/// Reusable register banks for program execution. One scratch serves any
/// number of programs from the same [`ProgramSet`]; banks grow on demand and
/// are never cleared, so pinned registers (quantifier counters written by
/// the caller) survive across runs.
#[derive(Debug)]
pub struct Scratch<V> {
    /// Integer registers. The low registers of a program compiled with a
    /// binding environment are pinned: the caller writes them directly.
    pub iregs: Vec<i64>,
    dregs: Vec<V>,
    bregs: Vec<bool>,
    pool: Vec<V>,
}

impl<V: DataValue> Scratch<V> {
    /// A scratch with the set's constant pool converted into the domain.
    pub fn for_set(set: &ProgramSet) -> Scratch<V> {
        Scratch {
            iregs: Vec::new(),
            dregs: Vec::new(),
            bregs: Vec::new(),
            pool: set.pool.iter().map(|&c| V::from_const(c)).collect(),
        }
    }

    /// Reads a data register (set by a previous [`Program::run`]).
    pub fn dreg(&self, r: u16) -> &V {
        &self.dregs[r as usize]
    }

    /// Grows the banks to fit `prog` without running it — used to size the
    /// pinned quantifier registers before writing them directly.
    pub fn reserve(&mut self, prog: &Program) {
        self.ensure(prog);
    }

    fn ensure(&mut self, prog: &Program) {
        if self.iregs.len() < prog.iregs as usize {
            self.iregs.resize(prog.iregs as usize, 0);
        }
        if self.dregs.len() < prog.dregs as usize {
            self.dregs.resize(prog.dregs as usize, V::from_const(0.0));
        }
        if self.bregs.len() < prog.bregs as usize {
            self.bregs.resize(prog.bregs as usize, false);
        }
    }
}

impl Program {
    /// Runs the program; results stay in the scratch registers.
    pub fn run<V: DataValue>(
        &self,
        set: &ProgramSet,
        st: &SlotState<V>,
        sc: &mut Scratch<V>,
    ) -> Result<(), EvalErr> {
        sc.ensure(self);
        let mut pc = 0usize;
        while pc < self.ops.len() {
            let op = self.ops[pc];
            pc += 1;
            match op {
                Op::IConst { dst, v } => sc.iregs[dst as usize] = v,
                Op::ISlot { dst, slot } => {
                    sc.iregs[dst as usize] = st.int_slot(slot).ok_or(EvalErr::UnboundInt(slot))?;
                }
                Op::ICopy { dst, src } => sc.iregs[dst as usize] = sc.iregs[src as usize],
                Op::IAddImm { dst, src, imm } => {
                    sc.iregs[dst as usize] = sc.iregs[src as usize] + imm;
                }
                Op::IBin { op, dst, a, b } => {
                    let (l, r) = (sc.iregs[a as usize], sc.iregs[b as usize]);
                    sc.iregs[dst as usize] = match op {
                        BinOp::Add => l + r,
                        BinOp::Sub => l - r,
                        BinOp::Mul => l * r,
                        BinOp::Div => {
                            if r == 0 {
                                0
                            } else {
                                l.div_euclid(r)
                            }
                        }
                    };
                }
                Op::IFn { f, dst, a, b } => {
                    let (l, r) = (sc.iregs[a as usize], sc.iregs[b as usize]);
                    sc.iregs[dst as usize] = match f {
                        IntFn::Min => l.min(r),
                        IntFn::Max => l.max(r),
                        IntFn::Abs => l.abs(),
                        IntFn::Mod => {
                            if r == 0 {
                                0
                            } else {
                                l.rem_euclid(r)
                            }
                        }
                    };
                }
                Op::ILoad { dst, arr, idx, n } => {
                    let a = st.array_slot(arr).ok_or(EvalErr::UnboundArray(arr))?;
                    let ix = &sc.iregs[idx as usize..(idx + n) as usize];
                    let v = a.get(ix).ok_or(EvalErr::OobLoad(arr))?;
                    sc.iregs[dst as usize] = v.as_index().ok_or(EvalErr::NotIndex(arr))?;
                }
                Op::DConst { dst, k } => {
                    sc.dregs[dst as usize] = sc.pool[k as usize].clone();
                }
                Op::DScalarOrReg { dst, slot, src } => {
                    sc.dregs[dst as usize] = match st.real_slot(slot) {
                        Some(v) => v.clone(),
                        None => V::from_const(sc.iregs[src as usize] as f64),
                    };
                }
                Op::DScalar { dst, slot } => {
                    sc.dregs[dst as usize] = match st.real_slot(slot) {
                        Some(v) => v.clone(),
                        None => V::from_const(
                            st.int_slot(slot).ok_or(EvalErr::UnboundScalar(slot))? as f64,
                        ),
                    };
                }
                Op::DCopy { dst, src } => {
                    sc.dregs[dst as usize] = sc.dregs[src as usize].clone();
                }
                Op::DBin { op, dst, a, b } => {
                    let v = {
                        let (l, r) = (&sc.dregs[a as usize], &sc.dregs[b as usize]);
                        match op {
                            BinOp::Add => l.add(r),
                            BinOp::Sub => l.sub(r),
                            BinOp::Mul => l.mul(r),
                            BinOp::Div => l.div(r),
                        }
                    };
                    sc.dregs[dst as usize] = v;
                }
                Op::DCall { f, dst, argv, argc } => {
                    let v = V::apply(
                        &set.funcs[f as usize],
                        &sc.dregs[argv as usize..(argv + argc) as usize],
                    );
                    sc.dregs[dst as usize] = v;
                }
                Op::DLoad { dst, arr, idx, n } => {
                    let a = st.array_slot(arr).ok_or(EvalErr::UnboundArray(arr))?;
                    let ix = &sc.iregs[idx as usize..(idx + n) as usize];
                    sc.dregs[dst as usize] = a.get(ix).ok_or(EvalErr::OobLoad(arr))?.clone();
                }
                Op::BCmp { op, dst, a, b } => {
                    sc.bregs[dst as usize] = op.eval(sc.iregs[a as usize], sc.iregs[b as usize]);
                }
                Op::BNot { dst, a } => sc.bregs[dst as usize] = !sc.bregs[a as usize],
                Op::BCopy { dst, src } => sc.bregs[dst as usize] = sc.bregs[src as usize],
                Op::BJumpFalse { cond, dst, skip } => {
                    if !sc.bregs[cond as usize] {
                        sc.bregs[dst as usize] = false;
                        pc += skip as usize;
                    }
                }
                Op::BJumpTrue { cond, dst, skip } => {
                    if sc.bregs[cond as usize] {
                        sc.bregs[dst as usize] = true;
                        pc += skip as usize;
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs and returns the integer result.
    pub fn eval_int<V: DataValue>(
        &self,
        set: &ProgramSet,
        st: &SlotState<V>,
        sc: &mut Scratch<V>,
    ) -> Result<i64, EvalErr> {
        self.run(set, st, sc)?;
        Ok(sc.iregs[self.result as usize])
    }

    /// Runs and returns the data result (cloned out of its register).
    pub fn eval_data<V: DataValue>(
        &self,
        set: &ProgramSet,
        st: &SlotState<V>,
        sc: &mut Scratch<V>,
    ) -> Result<V, EvalErr> {
        self.run(set, st, sc)?;
        Ok(sc.dregs[self.result as usize].clone())
    }

    /// Runs and returns the boolean result.
    pub fn eval_bool<V: DataValue>(
        &self,
        set: &ProgramSet,
        st: &SlotState<V>,
        sc: &mut Scratch<V>,
    ) -> Result<bool, EvalErr> {
        self.run(set, st, sc)?;
        Ok(sc.bregs[self.result as usize])
    }

    /// True when the op list contains no short-circuit jumps, i.e. control
    /// flow cannot diverge across lanes of a batched run.
    pub fn straight_line(&self) -> bool {
        self.ops
            .iter()
            .all(|op| !matches!(op, Op::BJumpFalse { .. } | Op::BJumpTrue { .. }))
    }

    /// Runs the program once across every lane set in `active`: op-major,
    /// lane-minor, over the SoA columns of `batch`. Per-lane semantics are
    /// exactly [`run`](Self::run) against that lane's state; a lane that
    /// fails is cleared from the returned mask with its error recorded in
    /// `errs[lane]` (which must be `None` for every active lane on entry).
    ///
    /// Only jump-free programs can be batched — check
    /// [`straight_line`](Self::straight_line) first and fall back to
    /// per-lane scalar runs otherwise.
    pub fn run_batch<V: DataValue>(
        &self,
        set: &ProgramSet,
        batch: &SlotBatch<'_, V>,
        sc: &mut BatchScratch<V>,
        mut active: u64,
        errs: &mut [Option<EvalErr>],
    ) -> u64 {
        debug_assert!(self.straight_line(), "run_batch needs a jump-free program");
        sc.ensure(self, batch.lanes());
        let lanes = batch.lanes();
        let fail = |errs: &mut [Option<EvalErr>], active: &mut u64, lane: usize, e: EvalErr| {
            errs[lane] = Some(e);
            *active &= !(1u64 << lane);
        };
        for op in &self.ops {
            if active == 0 {
                break;
            }
            match *op {
                Op::IConst { dst, v } => {
                    let d = dst as usize * lanes;
                    sc.iregs[d..d + lanes].fill(v);
                    sc.iuni[dst as usize] = true;
                }
                Op::ISlot { dst, slot } => {
                    let d = dst as usize * lanes;
                    for lane in lanes_in(active) {
                        match batch.int(slot, lane) {
                            Some(v) => sc.iregs[d + lane] = v,
                            None => fail(errs, &mut active, lane, EvalErr::UnboundInt(slot)),
                        }
                    }
                    sc.iuni[dst as usize] = false;
                }
                Op::ICopy { dst, src } => {
                    let (d, s) = (dst as usize * lanes, src as usize * lanes);
                    if sc.iuni[src as usize] {
                        let v = sc.iregs[s];
                        sc.iregs[d..d + lanes].fill(v);
                        sc.iuni[dst as usize] = true;
                    } else {
                        for lane in lanes_in(active) {
                            sc.iregs[d + lane] = sc.iregs[s + lane];
                        }
                        sc.iuni[dst as usize] = false;
                    }
                }
                Op::IAddImm { dst, src, imm } => {
                    let (d, s) = (dst as usize * lanes, src as usize * lanes);
                    if sc.iuni[src as usize] {
                        let v = sc.iregs[s] + imm;
                        sc.iregs[d..d + lanes].fill(v);
                        sc.iuni[dst as usize] = true;
                    } else {
                        for lane in lanes_in(active) {
                            sc.iregs[d + lane] = sc.iregs[s + lane] + imm;
                        }
                        sc.iuni[dst as usize] = false;
                    }
                }
                Op::IBin { op, dst, a, b } => {
                    let (d, x, y) = (dst as usize * lanes, a as usize * lanes, b as usize * lanes);
                    let ibin = |l: i64, r: i64| match op {
                        BinOp::Add => l + r,
                        BinOp::Sub => l - r,
                        BinOp::Mul => l * r,
                        BinOp::Div => {
                            if r == 0 {
                                0
                            } else {
                                l.div_euclid(r)
                            }
                        }
                    };
                    if sc.iuni[a as usize] && sc.iuni[b as usize] {
                        let v = ibin(sc.iregs[x], sc.iregs[y]);
                        sc.iregs[d..d + lanes].fill(v);
                        sc.iuni[dst as usize] = true;
                    } else {
                        for lane in lanes_in(active) {
                            sc.iregs[d + lane] = ibin(sc.iregs[x + lane], sc.iregs[y + lane]);
                        }
                        sc.iuni[dst as usize] = false;
                    }
                }
                Op::IFn { f, dst, a, b } => {
                    let (d, x, y) = (dst as usize * lanes, a as usize * lanes, b as usize * lanes);
                    let ifn = |l: i64, r: i64| match f {
                        IntFn::Min => l.min(r),
                        IntFn::Max => l.max(r),
                        IntFn::Abs => l.abs(),
                        IntFn::Mod => {
                            if r == 0 {
                                0
                            } else {
                                l.rem_euclid(r)
                            }
                        }
                    };
                    if sc.iuni[a as usize] && sc.iuni[b as usize] {
                        let v = ifn(sc.iregs[x], sc.iregs[y]);
                        sc.iregs[d..d + lanes].fill(v);
                        sc.iuni[dst as usize] = true;
                    } else {
                        for lane in lanes_in(active) {
                            sc.iregs[d + lane] = ifn(sc.iregs[x + lane], sc.iregs[y + lane]);
                        }
                        sc.iuni[dst as usize] = false;
                    }
                }
                Op::ILoad { dst, arr, idx, n } => {
                    let d = dst as usize * lanes;
                    let shared = sc.shared_offset(batch, arr, idx, n, active);
                    for lane in lanes_in(active) {
                        let Some(a) = batch.array(arr, lane) else {
                            fail(errs, &mut active, lane, EvalErr::UnboundArray(arr));
                            continue;
                        };
                        let off = match shared {
                            Some(off) => off,
                            None => {
                                let mut ix = [0i64; 16];
                                for (j, cell) in ix.iter_mut().enumerate().take(n as usize) {
                                    *cell = sc.iregs[(idx as usize + j) * lanes + lane];
                                }
                                a.offset(&ix[..n as usize])
                            }
                        };
                        let Some(v) = off.map(|o| &a.data[o]) else {
                            fail(errs, &mut active, lane, EvalErr::OobLoad(arr));
                            continue;
                        };
                        match v.as_index() {
                            Some(v) => sc.iregs[d + lane] = v,
                            None => fail(errs, &mut active, lane, EvalErr::NotIndex(arr)),
                        }
                    }
                    sc.iuni[dst as usize] = false;
                }
                Op::DConst { dst, k } => {
                    let d = dst as usize * lanes;
                    let v = sc.pool[k as usize].clone();
                    sc.dregs[d..d + lanes].fill(v);
                }
                Op::DScalarOrReg { dst, slot, src } => {
                    let (d, s) = (dst as usize * lanes, src as usize * lanes);
                    for lane in lanes_in(active) {
                        sc.dregs[d + lane] = match batch.real(slot, lane) {
                            Some(v) => v.clone(),
                            None => V::from_const(sc.iregs[s + lane] as f64),
                        };
                    }
                }
                Op::DScalar { dst, slot } => {
                    let d = dst as usize * lanes;
                    for lane in lanes_in(active) {
                        match batch.real(slot, lane) {
                            Some(v) => sc.dregs[d + lane] = v.clone(),
                            None => match batch.int(slot, lane) {
                                Some(v) => sc.dregs[d + lane] = V::from_const(v as f64),
                                None => {
                                    fail(errs, &mut active, lane, EvalErr::UnboundScalar(slot));
                                }
                            },
                        }
                    }
                }
                Op::DCopy { dst, src } => {
                    let (d, s) = (dst as usize * lanes, src as usize * lanes);
                    for lane in lanes_in(active) {
                        sc.dregs[d + lane] = sc.dregs[s + lane].clone();
                    }
                }
                Op::DBin { op, dst, a, b } => {
                    let (d, x, y) = (dst as usize * lanes, a as usize * lanes, b as usize * lanes);
                    for lane in lanes_in(active) {
                        let v = {
                            let (l, r) = (&sc.dregs[x + lane], &sc.dregs[y + lane]);
                            match op {
                                BinOp::Add => l.add(r),
                                BinOp::Sub => l.sub(r),
                                BinOp::Mul => l.mul(r),
                                BinOp::Div => l.div(r),
                            }
                        };
                        sc.dregs[d + lane] = v;
                    }
                }
                Op::DCall { f, dst, argv, argc } => {
                    let d = dst as usize * lanes;
                    for lane in lanes_in(active) {
                        sc.callbuf.clear();
                        for j in 0..argc as usize {
                            sc.callbuf
                                .push(sc.dregs[(argv as usize + j) * lanes + lane].clone());
                        }
                        let v = V::apply(&set.funcs[f as usize], &sc.callbuf);
                        sc.dregs[d + lane] = v;
                    }
                }
                Op::DLoad { dst, arr, idx, n } => {
                    let d = dst as usize * lanes;
                    let shared = sc.shared_offset(batch, arr, idx, n, active);
                    for lane in lanes_in(active) {
                        let Some(a) = batch.array(arr, lane) else {
                            fail(errs, &mut active, lane, EvalErr::UnboundArray(arr));
                            continue;
                        };
                        let off = match shared {
                            Some(off) => off,
                            None => {
                                let mut ix = [0i64; 16];
                                for (j, cell) in ix.iter_mut().enumerate().take(n as usize) {
                                    *cell = sc.iregs[(idx as usize + j) * lanes + lane];
                                }
                                a.offset(&ix[..n as usize])
                            }
                        };
                        match off {
                            Some(o) => sc.dregs[d + lane] = a.data[o].clone(),
                            None => fail(errs, &mut active, lane, EvalErr::OobLoad(arr)),
                        }
                    }
                }
                Op::BCmp { op, dst, a, b } => {
                    let (d, x, y) = (dst as usize * lanes, a as usize * lanes, b as usize * lanes);
                    for lane in lanes_in(active) {
                        sc.bregs[d + lane] = op.eval(sc.iregs[x + lane], sc.iregs[y + lane]);
                    }
                }
                Op::BNot { dst, a } => {
                    let (d, x) = (dst as usize * lanes, a as usize * lanes);
                    for lane in lanes_in(active) {
                        sc.bregs[d + lane] = !sc.bregs[x + lane];
                    }
                }
                Op::BCopy { dst, src } => {
                    let (d, s) = (dst as usize * lanes, src as usize * lanes);
                    for lane in lanes_in(active) {
                        sc.bregs[d + lane] = sc.bregs[s + lane];
                    }
                }
                Op::BJumpFalse { .. } | Op::BJumpTrue { .. } => {
                    unreachable!("run_batch on a program with short-circuit jumps")
                }
            }
        }
        active
    }
}

// ---------------------------------------------------------- Batched runtime

/// Iterates the set bit positions of a lane mask, lowest lane first.
#[derive(Debug, Clone, Copy)]
pub struct LaneIter(u64);

impl Iterator for LaneIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let lane = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(lane)
    }
}

/// The lanes set in `mask`, lowest first.
pub fn lanes_in(mask: u64) -> LaneIter {
    LaneIter(mask)
}

/// A full mask over the first `lanes` lanes.
pub fn lane_mask(lanes: usize) -> u64 {
    debug_assert!((1..=SLOT_BATCH_MAX_LANES).contains(&lanes));
    if lanes == 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Maximum number of lanes a [`SlotBatch`] holds: one `u64` mask bit each.
pub const SLOT_BATCH_MAX_LANES: usize = 64;

/// Structure-of-arrays transpose of up to [`SLOT_BATCH_MAX_LANES`] borrowed
/// [`SlotState`]s ("lanes"): slot-major, lane-minor columns, so a batched
/// program run sweeps each slot's values contiguously instead of re-entering
/// the interpreter per state. Unbound cells are tracked with per-slot lane
/// bitmasks; a lane whose vector is shorter than another's simply reads the
/// missing slots as unbound, like the hash-map absent-key behaviour.
#[derive(Debug)]
pub struct SlotBatch<'a, V> {
    lanes: usize,
    n_scalars: usize,
    n_arrays: usize,
    /// Integer cells, `[slot * lanes + lane]`; meaningful where bound.
    ints: Vec<i64>,
    /// Per scalar slot: which lanes have a bound integer cell.
    int_bound: Vec<u64>,
    /// Real cells, `[slot * lanes + lane]`.
    reals: Vec<Option<&'a V>>,
    /// Array cells, `[slot * lanes + lane]`.
    arrays: Vec<Option<&'a ArrayData<V>>>,
    /// Per array slot: `true` when every bound lane's array has identical
    /// dimension bounds, so one flat offset is valid for every lane.
    dims_uniform: Vec<bool>,
}

impl<'a, V: DataValue> SlotBatch<'a, V> {
    /// Transposes the given states into SoA columns. `None` entries are
    /// placeholder lanes (never activate them in a run); at least one state
    /// must be present and `states.len()` must not exceed
    /// [`SLOT_BATCH_MAX_LANES`].
    pub fn transpose(states: &[Option<&'a SlotState<V>>]) -> SlotBatch<'a, V> {
        let lanes = states.len();
        assert!(
            (1..=SLOT_BATCH_MAX_LANES).contains(&lanes),
            "batch of {lanes} lanes"
        );
        let live = states.iter().flatten();
        let n_scalars = live
            .clone()
            .map(|s| s.ints.len().max(s.reals.len()))
            .max()
            .unwrap_or(0);
        let n_arrays = live.map(|s| s.arrays.len()).max().unwrap_or(0);
        let mut out = SlotBatch {
            lanes,
            n_scalars,
            n_arrays,
            ints: vec![0; n_scalars * lanes],
            int_bound: vec![0; n_scalars],
            reals: vec![None; n_scalars * lanes],
            arrays: vec![None; n_arrays * lanes],
            dims_uniform: vec![false; n_arrays],
        };
        for (lane, st) in states.iter().enumerate() {
            let Some(st) = st else { continue };
            for (slot, cell) in st.ints.iter().enumerate() {
                if let Some(v) = cell {
                    out.ints[slot * lanes + lane] = *v;
                    out.int_bound[slot] |= 1 << lane;
                }
            }
            for (slot, cell) in st.reals.iter().enumerate() {
                if let Some(v) = cell {
                    out.reals[slot * lanes + lane] = Some(v);
                }
            }
            for (slot, cell) in st.arrays.iter().enumerate() {
                if let Some(arr) = cell {
                    out.arrays[slot * lanes + lane] = Some(arr.as_ref());
                }
            }
        }
        for slot in 0..n_arrays {
            let mut bound = out.arrays[slot * lanes..(slot + 1) * lanes]
                .iter()
                .flatten();
            let first = bound.next();
            out.dims_uniform[slot] = match first {
                Some(a) => bound.all(|b| b.dims == a.dims),
                None => false,
            };
        }
        out
    }

    /// Number of lanes (including placeholder lanes).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Reads lane `lane`'s integer cell for `slot`.
    pub fn int(&self, slot: u32, lane: usize) -> Option<i64> {
        let s = slot as usize;
        if s >= self.n_scalars || self.int_bound[s] & (1u64 << lane) == 0 {
            None
        } else {
            Some(self.ints[s * self.lanes + lane])
        }
    }

    /// Reads lane `lane`'s real cell for `slot`.
    pub fn real(&self, slot: u32, lane: usize) -> Option<&'a V> {
        let s = slot as usize;
        if s >= self.n_scalars {
            None
        } else {
            self.reals[s * self.lanes + lane]
        }
    }

    /// Reads lane `lane`'s array cell for `slot`.
    pub fn array(&self, slot: u32, lane: usize) -> Option<&'a ArrayData<V>> {
        let s = slot as usize;
        if s >= self.n_arrays {
            None
        } else {
            self.arrays[s * self.lanes + lane]
        }
    }

    /// True when every lane binding array `slot` binds it with identical
    /// dimension bounds, so a flat offset computed against one lane's array
    /// is valid for every bound lane.
    pub fn array_dims_uniform(&self, slot: u32) -> bool {
        let s = slot as usize;
        s < self.n_arrays && self.dims_uniform[s]
    }
}

/// Reusable register banks for batched program execution: the lane-strided
/// analogue of [`Scratch`], register-major (`[reg * lanes + lane]`). Like
/// the scalar scratch, banks grow on demand and pinned registers (quantifier
/// counters broadcast by the caller) survive across runs — but the lane
/// count is re-bound by [`reserve`](Self::reserve)/each run, so pins must be
/// re-written whenever the lane count changes.
#[derive(Debug)]
pub struct BatchScratch<V> {
    iregs: Vec<i64>,
    dregs: Vec<V>,
    bregs: Vec<bool>,
    /// Per integer register: `true` when every lane holds the same value
    /// (pinned broadcasts and constant/arithmetic derivations of them, all
    /// of which fill whole rows). Lets lane-invariant arithmetic run once
    /// and lane-invariant array offsets be resolved once per batch.
    iuni: Vec<bool>,
    pool: Vec<V>,
    callbuf: Vec<V>,
    lanes: usize,
}

impl<V: DataValue> BatchScratch<V> {
    /// A batch scratch with the set's constant pool converted into the
    /// domain.
    pub fn for_set(set: &ProgramSet) -> BatchScratch<V> {
        BatchScratch {
            iregs: Vec::new(),
            dregs: Vec::new(),
            bregs: Vec::new(),
            iuni: Vec::new(),
            pool: set.pool.iter().map(|&c| V::from_const(c)).collect(),
            callbuf: Vec::new(),
            lanes: 0,
        }
    }

    /// Grows the banks to fit `prog` at `lanes` lanes without running it —
    /// used to size the pinned quantifier registers before writing them.
    pub fn reserve(&mut self, prog: &Program, lanes: usize) {
        self.ensure(prog, lanes);
    }

    fn ensure(&mut self, prog: &Program, lanes: usize) {
        self.lanes = lanes;
        let ni = prog.iregs as usize * lanes;
        if self.iregs.len() < ni {
            self.iregs.resize(ni, 0);
        }
        let nd = prog.dregs as usize * lanes;
        if self.dregs.len() < nd {
            self.dregs.resize(nd, V::from_const(0.0));
        }
        let nb = prog.bregs as usize * lanes;
        if self.bregs.len() < nb {
            self.bregs.resize(nb, false);
        }
        if self.iuni.len() < prog.iregs as usize {
            self.iuni.resize(prog.iregs as usize, false);
        }
    }

    /// Reads lane `lane` of integer register `r`.
    pub fn ireg(&self, r: u16, lane: usize) -> i64 {
        self.iregs[r as usize * self.lanes + lane]
    }

    /// Reads lane `lane` of data register `r`.
    pub fn dreg(&self, r: u16, lane: usize) -> &V {
        &self.dregs[r as usize * self.lanes + lane]
    }

    /// Reads lane `lane` of boolean register `r`.
    pub fn breg(&self, r: u16, lane: usize) -> bool {
        self.bregs[r as usize * self.lanes + lane]
    }

    /// Writes `v` into integer register `r` of every lane — the batched
    /// analogue of pinning a quantifier counter. The whole row is filled (a
    /// vectorizable store that also makes the register lane-uniform by
    /// construction, letting batched loads resolve their offsets once).
    pub fn pin_ireg(&mut self, r: u16, v: i64) {
        let base = r as usize * self.lanes;
        self.iregs[base..base + self.lanes].fill(v);
        self.iuni[r as usize] = true;
    }

    /// True when integer register `r` holds the same value on every lane
    /// (see [`pin_ireg`](Self::pin_ireg)).
    pub fn ireg_uniform(&self, r: u16) -> bool {
        self.iuni[r as usize]
    }

    /// Resolves a lane-invariant flat offset for a load of rank `n` from
    /// array `arr` at index registers `idx..idx + n`: `Some(off)` when every
    /// active lane addresses the same multi-index (all index registers
    /// lane-uniform) into arrays with identical dims, so `off` — `None` for
    /// out-of-bounds — stands for every bound lane. Returns `None` when no
    /// shared offset exists and lanes must resolve their indices one by one.
    fn shared_offset(
        &self,
        batch: &SlotBatch<'_, V>,
        arr: u32,
        idx: u16,
        n: u16,
        active: u64,
    ) -> Option<Option<usize>> {
        if !batch.array_dims_uniform(arr) || !(idx..idx + n).all(|r| self.iuni[r as usize]) {
            return None;
        }
        // Uniform dims make any bound active lane's array representative,
        // and uniform registers hold their value on every lane (lane 0).
        let a = lanes_in(active).find_map(|lane| batch.array(arr, lane))?;
        let mut ix = [0i64; 16];
        for (j, cell) in ix.iter_mut().enumerate().take(n as usize) {
            *cell = self.iregs[(idx as usize + j) * self.lanes];
        }
        Some(a.offset(&ix[..n as usize]))
    }
}

// ------------------------------------------------------------ Slot program

/// A compiled statement. Only the constructs whose interpreter semantics
/// the bytecode reproduces exactly are representable; in particular there
/// is no conditional (the lifter rejects kernels containing one, and VC
/// bodies never do).
#[derive(Debug, Clone)]
pub enum SlotStmt {
    /// Scalar assignment with the interpreter's dynamic dispatch: when the
    /// integer cell is bound the value is evaluated as an integer
    /// expression, otherwise as a data expression.
    Assign {
        /// Target scalar slot.
        slot: u32,
        /// The value compiled as an integer expression.
        int_prog: Program,
        /// The value compiled as a data expression.
        data_prog: Program,
    },
    /// Array element store.
    Store {
        /// Target array slot.
        arr: u32,
        /// Program computing the indices and the stored value.
        prog: Program,
        /// First index register.
        idx: u16,
        /// Number of indices.
        rank: u16,
        /// Data register holding the stored value.
        value: u16,
    },
    /// A counted loop (capture-path kernels only; VC bodies are loop-free).
    Loop {
        /// Counter scalar slot.
        var: u32,
        /// Counter name (kept for snapshot labeling without map lookups).
        var_name: String,
        /// Lower-bound program (integer).
        lo: Program,
        /// Clip-bound program (integer).
        hi: Program,
        /// Constant step.
        step: i64,
        /// Loop body.
        body: Vec<SlotStmt>,
    },
}

/// Executes one straight-line statement (`Assign` or `Store`).
///
/// # Errors
///
/// Mirrors the interpreter's failure modes ([`EvalErr`]).
///
/// # Panics
///
/// Panics on a [`SlotStmt::Loop`]; loop walking belongs to the caller
/// (either [`exec_stmts`] or a tracing executor).
pub fn exec_straight<V: DataValue>(
    stmt: &SlotStmt,
    set: &ProgramSet,
    st: &mut SlotState<V>,
    sc: &mut Scratch<V>,
) -> Result<(), EvalErr> {
    match stmt {
        SlotStmt::Assign {
            slot,
            int_prog,
            data_prog,
        } => {
            if st.int_slot(*slot).is_some() {
                let v = int_prog.eval_int(set, st, sc)?;
                st.set_int_slot(*slot, v);
            } else {
                let v = data_prog.eval_data(set, st, sc)?;
                st.set_real_slot(*slot, v);
            }
            Ok(())
        }
        SlotStmt::Store {
            arr,
            prog,
            idx,
            rank,
            value,
        } => {
            prog.run(set, st, sc)?;
            let target = st.array_slot_mut(*arr).ok_or(EvalErr::UnboundArray(*arr))?;
            let ix = &sc.iregs[*idx as usize..(*idx + *rank) as usize];
            let v = sc.dregs[*value as usize].clone();
            if !target.set(ix, v) {
                return Err(EvalErr::OobStore(*arr));
            }
            Ok(())
        }
        SlotStmt::Loop { .. } => panic!("exec_straight cannot execute a loop"),
    }
}

/// Executes a compiled statement list against a state, with the
/// interpreter's statement budget and Fortran loop-counter semantics.
///
/// # Errors
///
/// Mirrors [`crate::interp::run_stmts`]'s failure modes.
pub fn exec_stmts<V: DataValue>(
    stmts: &[SlotStmt],
    set: &ProgramSet,
    st: &mut SlotState<V>,
    sc: &mut Scratch<V>,
    steps: &mut u64,
    max_steps: u64,
) -> Result<(), EvalErr> {
    exec_stmts_traced(stmts, set, st, sc, steps, max_steps, &mut NoTrace)
}

/// Observation hook for [`exec_stmts_traced`]: called with the state as the
/// executor reaches each loop-iteration head (counter just set) and each
/// loop exit (counter one step past the bound). The bounded checker's state
/// capture implements this; plain execution uses the no-op default.
pub trait LoopTrace<V> {
    /// Called at the head of every loop iteration.
    fn at_loop_head(&mut self, _var_name: &str, _state: &SlotState<V>) {}
    /// Called immediately after a loop exits.
    fn at_loop_exit(&mut self, _var_name: &str, _state: &SlotState<V>) {}
}

/// The no-op trace used by [`exec_stmts`].
struct NoTrace;

impl<V> LoopTrace<V> for NoTrace {}

/// [`exec_stmts`] with a loop-observation hook, so tracing executors (state
/// capture) share this single implementation of the loop protocol instead
/// of hand-copying the zero-step check, direction test, and
/// counter-past-end semantics.
///
/// # Errors
///
/// See [`exec_stmts`].
#[allow(clippy::too_many_arguments)]
pub fn exec_stmts_traced<V: DataValue>(
    stmts: &[SlotStmt],
    set: &ProgramSet,
    st: &mut SlotState<V>,
    sc: &mut Scratch<V>,
    steps: &mut u64,
    max_steps: u64,
    trace: &mut impl LoopTrace<V>,
) -> Result<(), EvalErr> {
    for stmt in stmts {
        *steps += 1;
        if *steps > max_steps {
            return Err(EvalErr::Budget);
        }
        match stmt {
            SlotStmt::Loop {
                var,
                var_name,
                lo,
                hi,
                step,
                body,
            } => {
                let lo = lo.eval_int(set, st, sc)?;
                let hi = hi.eval_int(set, st, sc)?;
                if *step == 0 {
                    return Err(EvalErr::ZeroStep);
                }
                let mut cur = lo;
                loop {
                    // Charge per iteration as well as per statement so loops
                    // whose bodies execute nothing still hit the budget.
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(EvalErr::Budget);
                    }
                    let in_range = if *step > 0 { cur <= hi } else { cur >= hi };
                    if !in_range {
                        break;
                    }
                    st.set_int_slot(*var, cur);
                    trace.at_loop_head(var_name, st);
                    exec_stmts_traced(body, set, st, sc, steps, max_steps, trace)?;
                    cur += step;
                }
                // Fortran leaves the counter one step past the bound.
                st.set_int_slot(*var, cur);
                trace.at_loop_exit(var_name, st);
            }
            other => exec_straight(other, set, st, sc)?,
        }
    }
    Ok(())
}

// ----------------------------------------------------------------- Compiler

/// Compiles [`IrExpr`]s and [`IrStmt`]s into slot-addressed [`Program`]s.
///
/// One compiler instance accumulates a shared [`ProgramSet`] (constant pool
/// and function table) across any number of programs; finish with
/// [`Compiler::into_set`]. A *binding environment* maps quantified-variable
/// names to pinned low integer registers — references to those names compile
/// to register reads instead of slot reads, which is what lets quantifier
/// enumeration run without touching (or restoring) the state.
pub struct Compiler<'m> {
    map: &'m SlotMap,
    set: ProgramSet,
    env: Vec<(String, u16)>,
    ops: Vec<Op>,
    next_i: u16,
    next_d: u16,
    next_b: u16,
}

impl<'m> Compiler<'m> {
    /// A compiler resolving names through `map`.
    pub fn new(map: &'m SlotMap) -> Compiler<'m> {
        Compiler {
            map,
            set: ProgramSet::default(),
            env: Vec::new(),
            ops: Vec::new(),
            next_i: 0,
            next_d: 0,
            next_b: 0,
        }
    }

    /// Sets the binding environment: `vars[k]` is pinned to integer
    /// register `k` in every subsequently compiled program.
    pub fn set_env(&mut self, vars: &[String]) {
        self.env = vars
            .iter()
            .enumerate()
            .map(|(k, v)| (v.clone(), k as u16))
            .collect();
    }

    /// Clears the binding environment.
    pub fn clear_env(&mut self) {
        self.env.clear();
    }

    /// Consumes the compiler, returning the shared tables.
    pub fn into_set(self) -> ProgramSet {
        self.set
    }

    fn start(&mut self) {
        self.ops = Vec::new();
        self.next_i = self.env.len() as u16;
        self.next_d = 0;
        self.next_b = 0;
    }

    fn finish(&mut self, result: u16) -> Program {
        Program {
            ops: std::mem::take(&mut self.ops),
            result,
            iregs: self.next_i,
            dregs: self.next_d,
            bregs: self.next_b,
        }
    }

    fn ireg(&mut self) -> u16 {
        let r = self.next_i;
        self.next_i += 1;
        r
    }

    fn dreg(&mut self) -> u16 {
        let r = self.next_d;
        self.next_d += 1;
        r
    }

    fn breg(&mut self) -> u16 {
        let r = self.next_b;
        self.next_b += 1;
        r
    }

    fn pool_const(&mut self, v: f64) -> u16 {
        // Constant pools stay tiny; linear dedup by bit pattern keeps NaN
        // handling exact without a float-keyed map.
        if let Some(k) = self
            .set
            .pool
            .iter()
            .position(|&c| c.to_bits() == v.to_bits())
        {
            return k as u16;
        }
        self.set.pool.push(v);
        (self.set.pool.len() - 1) as u16
    }

    fn func_id(&mut self, name: &str) -> u16 {
        if let Some(k) = self.set.funcs.iter().position(|f| f == name) {
            return k as u16;
        }
        self.set.funcs.push(name.to_string());
        (self.set.funcs.len() - 1) as u16
    }

    fn env_reg(&self, name: &str) -> Option<u16> {
        self.env.iter().find(|(n, _)| n == name).map(|(_, r)| *r)
    }

    /// Compiles an integer-valued expression into a standalone program.
    ///
    /// # Errors
    ///
    /// Fails on constructs [`crate::interp::eval_int_expr`] would reject for
    /// *every* state (boolean sub-terms, unknown intrinsics); state-dependent
    /// failures stay runtime errors.
    pub fn compile_int(&mut self, e: &IrExpr) -> Result<Program, CompileErr> {
        self.start();
        let r = self.int_expr(e)?;
        Ok(self.finish(r))
    }

    /// Compiles a data-valued expression into a standalone program.
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile_int`].
    pub fn compile_data(&mut self, e: &IrExpr) -> Result<Program, CompileErr> {
        self.start();
        let r = self.data_expr(e)?;
        Ok(self.finish(r))
    }

    /// Compiles a boolean expression into a standalone program.
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile_int`].
    pub fn compile_bool(&mut self, e: &IrExpr) -> Result<Program, CompileErr> {
        self.start();
        let r = self.bool_expr(e)?;
        Ok(self.finish(r))
    }

    /// Compiles two data-valued expressions into one program (left first,
    /// preserving the interpreter's evaluation — and error — order).
    /// Returns the program and both result registers.
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile_int`].
    pub fn compile_data_pair(
        &mut self,
        lhs: &IrExpr,
        rhs: &IrExpr,
    ) -> Result<(Program, u16, u16), CompileErr> {
        self.start();
        let a = self.data_expr(lhs)?;
        let b = self.data_expr(rhs)?;
        Ok((self.finish(b), a, b))
    }

    /// Compiles an index vector plus a data value into one program (the
    /// shape shared by stores and quantified output equations). Returns the
    /// program, the first index register, and the value's data register.
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile_int`].
    pub fn compile_indexed_value(
        &mut self,
        indices: &[IrExpr],
        value: &IrExpr,
    ) -> Result<(Program, u16, u16), CompileErr> {
        self.start();
        let idx_start = self.index_block(indices)?;
        let v = self.data_expr(value)?;
        Ok((self.finish(v), idx_start, v))
    }

    /// Compiles index expressions into a fresh contiguous register block
    /// (allocated up front so each index computes straight into its block
    /// register, in order); returns the block's first register.
    fn index_block(&mut self, indices: &[IrExpr]) -> Result<u16, CompileErr> {
        let start = self.next_i;
        for _ in indices {
            self.ireg();
        }
        for (k, ix) in indices.iter().enumerate() {
            self.int_expr_into(ix, start + k as u16)?;
        }
        Ok(start)
    }

    /// Views `var ± c` (and bare `var`/`c`) as `(source, immediate)`; the
    /// fused-form peephole behind [`Op::IAddImm`].
    fn as_reg_plus_imm(&mut self, e: &IrExpr) -> Result<Option<(u16, i64)>, CompileErr> {
        let (base, imm) = match e {
            IrExpr::Var(_) => (e, 0i64),
            IrExpr::Bin { op, lhs, rhs } => match (op, rhs.as_ref()) {
                (BinOp::Add, IrExpr::Int(c)) => (lhs.as_ref(), *c),
                (BinOp::Sub, IrExpr::Int(c)) => (lhs.as_ref(), -*c),
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        let IrExpr::Var(name) = base else {
            return Ok(None);
        };
        let src = match self.env_reg(name) {
            Some(r) => r,
            None => {
                let slot = self.map.scalar(name);
                let t = self.ireg();
                self.ops.push(Op::ISlot { dst: t, slot });
                t
            }
        };
        Ok(Some((src, imm)))
    }

    /// Compiles an integer expression so its result lands in `dst`.
    fn int_expr_into(&mut self, e: &IrExpr, dst: u16) -> Result<(), CompileErr> {
        if let IrExpr::Int(v) = e {
            self.ops.push(Op::IConst { dst, v: *v });
            return Ok(());
        }
        if let Some((src, imm)) = self.as_reg_plus_imm(e)? {
            self.ops.push(if imm == 0 {
                Op::ICopy { dst, src }
            } else {
                Op::IAddImm { dst, src, imm }
            });
            return Ok(());
        }
        let src = self.int_expr(e)?;
        self.ops.push(Op::ICopy { dst, src });
        Ok(())
    }

    fn int_expr(&mut self, e: &IrExpr) -> Result<u16, CompileErr> {
        match e {
            IrExpr::Int(v) => {
                let dst = self.ireg();
                self.ops.push(Op::IConst { dst, v: *v });
                Ok(dst)
            }
            IrExpr::Real(v) => {
                let dst = self.ireg();
                self.ops.push(Op::IConst { dst, v: *v as i64 });
                Ok(dst)
            }
            IrExpr::Var(name) => {
                if let Some(src) = self.env_reg(name) {
                    let dst = self.ireg();
                    self.ops.push(Op::ICopy { dst, src });
                    return Ok(dst);
                }
                let slot = self.map.scalar(name);
                let dst = self.ireg();
                self.ops.push(Op::ISlot { dst, slot });
                Ok(dst)
            }
            IrExpr::Bin { op, lhs, rhs } => {
                if let Some((src, imm)) = self.as_reg_plus_imm(e)? {
                    let dst = self.ireg();
                    self.ops.push(if imm == 0 {
                        Op::ICopy { dst, src }
                    } else {
                        Op::IAddImm { dst, src, imm }
                    });
                    return Ok(dst);
                }
                let a = self.int_expr(lhs)?;
                let b = self.int_expr(rhs)?;
                let dst = self.ireg();
                self.ops.push(Op::IBin { op: *op, dst, a, b });
                Ok(dst)
            }
            IrExpr::Call { func, args } => {
                let f = match (func.as_str(), args.len()) {
                    ("min", 2) => IntFn::Min,
                    ("max", 2) => IntFn::Max,
                    ("abs", 1) => IntFn::Abs,
                    ("mod", 2) => IntFn::Mod,
                    _ => return Err(CompileErr(format!("call to '{func}' in integer position"))),
                };
                let a = self.int_expr(&args[0])?;
                let b = if args.len() > 1 {
                    self.int_expr(&args[1])?
                } else {
                    a
                };
                let dst = self.ireg();
                self.ops.push(Op::IFn { f, dst, a, b });
                Ok(dst)
            }
            IrExpr::Load { array, indices } => {
                let idx = self.index_block(indices)?;
                let arr = self.map.array(array);
                let dst = self.ireg();
                self.ops.push(Op::ILoad {
                    dst,
                    arr,
                    idx,
                    n: indices.len() as u16,
                });
                Ok(dst)
            }
            other => Err(CompileErr(format!(
                "'{other}' is not an integer expression"
            ))),
        }
    }

    fn data_expr(&mut self, e: &IrExpr) -> Result<u16, CompileErr> {
        match e {
            IrExpr::Real(v) => {
                let k = self.pool_const(*v);
                let dst = self.dreg();
                self.ops.push(Op::DConst { dst, k });
                Ok(dst)
            }
            IrExpr::Int(v) => {
                let k = self.pool_const(*v as f64);
                let dst = self.dreg();
                self.ops.push(Op::DConst { dst, k });
                Ok(dst)
            }
            IrExpr::Var(name) => {
                let dst = self.dreg();
                let slot = self.map.scalar(name);
                if let Some(src) = self.env_reg(name) {
                    self.ops.push(Op::DScalarOrReg { dst, slot, src });
                } else {
                    self.ops.push(Op::DScalar { dst, slot });
                }
                Ok(dst)
            }
            IrExpr::Load { array, indices } => {
                let idx = self.index_block(indices)?;
                let arr = self.map.array(array);
                let dst = self.dreg();
                self.ops.push(Op::DLoad {
                    dst,
                    arr,
                    idx,
                    n: indices.len() as u16,
                });
                Ok(dst)
            }
            IrExpr::Bin { op, lhs, rhs } => {
                let a = self.data_expr(lhs)?;
                let b = self.data_expr(rhs)?;
                let dst = self.dreg();
                self.ops.push(Op::DBin { op: *op, dst, a, b });
                Ok(dst)
            }
            IrExpr::Call { func, args } => {
                let regs: Vec<u16> = args
                    .iter()
                    .map(|a| self.data_expr(a))
                    .collect::<Result<_, _>>()?;
                let argv = self.next_d;
                for _ in &regs {
                    self.dreg();
                }
                for (k, src) in regs.iter().enumerate() {
                    self.ops.push(Op::DCopy {
                        dst: argv + k as u16,
                        src: *src,
                    });
                }
                let f = self.func_id(func);
                let dst = self.dreg();
                self.ops.push(Op::DCall {
                    f,
                    dst,
                    argv,
                    argc: args.len() as u16,
                });
                Ok(dst)
            }
            other => Err(CompileErr(format!("'{other}' is not a data expression"))),
        }
    }

    fn bool_expr(&mut self, e: &IrExpr) -> Result<u16, CompileErr> {
        match e {
            IrExpr::Cmp { op, lhs, rhs } => {
                let a = self.int_expr(lhs)?;
                let b = self.int_expr(rhs)?;
                let dst = self.breg();
                self.ops.push(Op::BCmp { op: *op, dst, a, b });
                Ok(dst)
            }
            IrExpr::And(a, b) => {
                let ra = self.bool_expr(a)?;
                let dst = self.breg();
                let jump_at = self.ops.len();
                self.ops.push(Op::BJumpFalse {
                    cond: ra,
                    dst,
                    skip: 0,
                });
                let rb = self.bool_expr(b)?;
                self.ops.push(Op::BCopy { dst, src: rb });
                let skip = (self.ops.len() - jump_at - 1) as u16;
                self.ops[jump_at] = Op::BJumpFalse {
                    cond: ra,
                    dst,
                    skip,
                };
                Ok(dst)
            }
            IrExpr::Or(a, b) => {
                let ra = self.bool_expr(a)?;
                let dst = self.breg();
                let jump_at = self.ops.len();
                self.ops.push(Op::BJumpTrue {
                    cond: ra,
                    dst,
                    skip: 0,
                });
                let rb = self.bool_expr(b)?;
                self.ops.push(Op::BCopy { dst, src: rb });
                let skip = (self.ops.len() - jump_at - 1) as u16;
                self.ops[jump_at] = Op::BJumpTrue {
                    cond: ra,
                    dst,
                    skip,
                };
                Ok(dst)
            }
            IrExpr::Not(inner) => {
                let a = self.bool_expr(inner)?;
                let dst = self.breg();
                self.ops.push(Op::BNot { dst, a });
                Ok(dst)
            }
            other => Err(CompileErr(format!("'{other}' is not a boolean expression"))),
        }
    }

    /// Compiles a statement list. Conditionals are rejected (their dynamic
    /// int-versus-data comparison fallback is not representable); callers
    /// fall back to the tree-walking interpreter for such kernels.
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile_int`].
    pub fn compile_stmts(&mut self, stmts: &[IrStmt]) -> Result<Vec<SlotStmt>, CompileErr> {
        stmts.iter().map(|s| self.compile_stmt(s)).collect()
    }

    fn compile_stmt(&mut self, stmt: &IrStmt) -> Result<SlotStmt, CompileErr> {
        match stmt {
            IrStmt::AssignScalar { name, value } => {
                let slot = self.map.scalar(name);
                let int_prog = self.compile_int(value)?;
                let data_prog = self.compile_data(value)?;
                Ok(SlotStmt::Assign {
                    slot,
                    int_prog,
                    data_prog,
                })
            }
            IrStmt::Store {
                array,
                indices,
                value,
            } => {
                let arr = self.map.array(array);
                let (prog, idx, value) = self.compile_indexed_value(indices, value)?;
                Ok(SlotStmt::Store {
                    arr,
                    prog,
                    idx,
                    rank: indices.len() as u16,
                    value,
                })
            }
            IrStmt::Loop { domain, body } => {
                let var = self.map.scalar(&domain.var);
                let lo = self.compile_int(&domain.lo)?;
                let hi = self.compile_int(&domain.hi)?;
                let body = self.compile_stmts(body)?;
                Ok(SlotStmt::Loop {
                    var,
                    var_name: domain.var.clone(),
                    lo,
                    hi,
                    step: domain.step,
                    body,
                })
            }
            IrStmt::If { .. } => Err(CompileErr(
                "conditionals are outside the compiled subset".to_string(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{eval_data_expr, eval_int_expr, run_stmts};
    use crate::ir::IterDomain;
    use crate::value::ModInt;

    fn map_and_state() -> (Arc<SlotMap>, SlotState<f64>, State<f64>) {
        let map = Arc::new(SlotMap::new());
        let mut hs: State<f64> = State::new();
        hs.set_int("i", 3).set_int("n", 5).set_real("t", 2.5);
        hs.set_array(
            "b",
            ArrayData::from_fn(vec![(0, 5)], |ix| ix[0] as f64 * 0.5),
        );
        let ss = SlotState::from_state(&hs, &map);
        (map, ss, hs)
    }

    #[test]
    fn conversions_round_trip() {
        let (_, ss, hs) = map_and_state();
        assert_eq!(ss.to_state(), hs);
        assert_eq!(ss.int("i"), Some(3));
        assert!(ss.int("zzz").is_none());
        assert_eq!(ss.array("b").unwrap().len(), 6);
    }

    #[test]
    fn compiled_expressions_match_interpreter() {
        let (map, ss, hs) = map_and_state();
        let mut c = Compiler::new(&map);

        // Integer: (i + 2) * n / 2 and min(i, n)
        let e = IrExpr::bin(
            BinOp::Div,
            IrExpr::mul(
                IrExpr::add(IrExpr::var("i"), IrExpr::Int(2)),
                IrExpr::var("n"),
            ),
            IrExpr::Int(2),
        );
        let p = c.compile_int(&e).unwrap();
        let e2 = IrExpr::Call {
            func: "min".into(),
            args: vec![IrExpr::var("i"), IrExpr::var("n")],
        };
        let p2 = c.compile_int(&e2).unwrap();
        // Data: 0.5 * b[i] + t + exp(t)
        let e3 = IrExpr::add(
            IrExpr::add(
                IrExpr::mul(
                    IrExpr::Real(0.5),
                    IrExpr::Load {
                        array: "b".into(),
                        indices: vec![IrExpr::var("i")],
                    },
                ),
                IrExpr::var("t"),
            ),
            IrExpr::Call {
                func: "exp".into(),
                args: vec![IrExpr::var("t")],
            },
        );
        let p3 = c.compile_data(&e3).unwrap();
        // Bool with short-circuit: i <= n && b[99] > 0 would error on the
        // right side; i > n && ... must return false without evaluating it.
        let oob = IrExpr::cmp(
            CmpOp::Gt,
            IrExpr::Load {
                array: "b".into(),
                indices: vec![IrExpr::Int(99)],
            },
            IrExpr::Int(0),
        );
        let sc_false = IrExpr::And(
            Box::new(IrExpr::cmp(CmpOp::Gt, IrExpr::var("i"), IrExpr::var("n"))),
            Box::new(oob.clone()),
        );
        let p4 = c.compile_bool(&sc_false).unwrap();
        let sc_true = IrExpr::Or(
            Box::new(IrExpr::cmp(CmpOp::Le, IrExpr::var("i"), IrExpr::var("n"))),
            Box::new(oob),
        );
        let p5 = c.compile_bool(&sc_true).unwrap();

        let set = c.into_set();
        let mut sc: Scratch<f64> = Scratch::for_set(&set);
        assert_eq!(
            p.eval_int(&set, &ss, &mut sc).unwrap(),
            eval_int_expr(&e, &hs).unwrap()
        );
        assert_eq!(
            p2.eval_int(&set, &ss, &mut sc).unwrap(),
            eval_int_expr(&e2, &hs).unwrap()
        );
        assert_eq!(
            p3.eval_data(&set, &ss, &mut sc).unwrap(),
            eval_data_expr(&e3, &hs).unwrap()
        );
        assert!(!p4.eval_bool(&set, &ss, &mut sc).unwrap());
        assert!(p5.eval_bool(&set, &ss, &mut sc).unwrap());
    }

    #[test]
    fn unbound_reads_error_like_the_interpreter() {
        let (map, ss, _) = map_and_state();
        let mut c = Compiler::new(&map);
        let p = c.compile_int(&IrExpr::var("missing")).unwrap();
        let set = c.into_set();
        let mut sc: Scratch<f64> = Scratch::for_set(&set);
        let err = p.eval_int(&set, &ss, &mut sc).unwrap_err();
        assert!(err
            .render(&map)
            .to_string()
            .contains("unbound integer variable 'missing'"));
    }

    #[test]
    fn env_registers_shadow_slots() {
        let (map, ss, _) = map_and_state();
        let mut c = Compiler::new(&map);
        c.set_env(&["i".to_string()]);
        let p = c
            .compile_int(&IrExpr::add(IrExpr::var("i"), IrExpr::var("n")))
            .unwrap();
        let set = c.into_set();
        let mut sc: Scratch<f64> = Scratch::for_set(&set);
        sc.iregs.resize(1, 0);
        sc.iregs[0] = 100; // pinned quantifier value, shadowing slot i = 3
        assert_eq!(p.eval_int(&set, &ss, &mut sc).unwrap(), 105);
    }

    #[test]
    fn compiled_statements_match_interpreter() {
        // do k = 1, n { acc = acc + 1; b[k] = b[k-1] + t }
        let stmts = vec![IrStmt::Loop {
            domain: IterDomain::unit("k", IrExpr::Int(1), IrExpr::var("n")),
            body: vec![
                IrStmt::AssignScalar {
                    name: "acc".into(),
                    value: IrExpr::add(IrExpr::var("acc"), IrExpr::Int(1)),
                },
                IrStmt::Store {
                    array: "b".into(),
                    indices: vec![IrExpr::var("k")],
                    value: IrExpr::add(
                        IrExpr::Load {
                            array: "b".into(),
                            indices: vec![IrExpr::sub(IrExpr::var("k"), IrExpr::Int(1))],
                        },
                        IrExpr::var("t"),
                    ),
                },
            ],
        }];
        let map = Arc::new(SlotMap::new());
        let mut hs: State<f64> = State::new();
        hs.set_int("n", 4).set_int("acc", 0).set_real("t", 1.5);
        hs.set_array("b", ArrayData::from_fn(vec![(0, 4)], |ix| ix[0] as f64));
        let mut ss = SlotState::from_state(&hs, &map);

        let mut c = Compiler::new(&map);
        let compiled = c.compile_stmts(&stmts).unwrap();
        let set = c.into_set();
        let mut sc: Scratch<f64> = Scratch::for_set(&set);
        let mut steps = 0u64;
        exec_stmts(&compiled, &set, &mut ss, &mut sc, &mut steps, 10_000).unwrap();
        run_stmts(&stmts, &mut hs, 10_000).unwrap();
        assert_eq!(ss.to_state(), hs);
        // Fortran counter-past-end semantics preserved.
        assert_eq!(ss.int("k"), Some(5));
    }

    #[test]
    fn conditionals_are_rejected_at_compile_time() {
        let map = SlotMap::new();
        let mut c = Compiler::new(&map);
        let stmt = IrStmt::If {
            cond: IrExpr::cmp(CmpOp::Gt, IrExpr::var("i"), IrExpr::Int(0)),
            then_body: vec![],
            else_body: vec![],
        };
        assert!(c.compile_stmts(&[stmt]).is_err());
    }

    #[test]
    fn map_growth_leaves_old_states_unbound_not_broken() {
        let map = Arc::new(SlotMap::new());
        let mut ss: SlotState<ModInt> = SlotState::new(Arc::clone(&map));
        ss.set_int("n", 4);
        // Register a new name after the state was built.
        let late = map.scalar("late");
        assert!(ss.int_slot(late).is_none());
        assert_eq!(ss.int("n"), Some(4));
    }
}
