//! Lowering from the surface AST to the canonical kernel IR (§5.1).
//!
//! Lowering performs the "processing selected loops" step of the paper: each
//! candidate fragment is extracted into its own [`Kernel`] with explicit
//! parameters, loops are canonicalized to constant-step counted loops, and
//! constructs the lifter cannot handle (conditionals, calls to non-pure
//! procedures, `exit`/`cycle`, non-constant steps) are rejected with an
//! [`Error::Unsupported`] so the pipeline can record them as untranslated.

use crate::ast::{BinOpKind, CmpOpKind, Expr, LValue, Procedure, Stmt, Type};
use crate::error::{Error, Result};
use crate::identify::{identify_candidates, CandidateFragment};
use crate::ir::{BinOp, CmpOp, IrExpr, IrStmt, IterDomain, Kernel, Param, ParamKind};
use crate::parser::is_intrinsic;
use std::collections::BTreeSet;

/// Lowers every candidate fragment of a procedure, in order.
///
/// Each element is either the lowered kernel or the reason lowering failed
/// (which the pipeline reports as an untranslated kernel).
pub fn lower_procedure_loops(proc: &Procedure) -> Vec<Result<Kernel>> {
    identify_candidates(proc)
        .into_iter()
        .map(|fragment| lower_fragment(proc, &fragment))
        .collect()
}

/// Lowers a single candidate fragment of `proc` into a kernel.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for constructs outside the liftable subset
/// and [`Error::Lower`] for malformed fragments (e.g. undeclared arrays).
pub fn lower_fragment(proc: &Procedure, fragment: &CandidateFragment) -> Result<Kernel> {
    let mut ctx = LowerCtx::new(proc);
    let mut body = Vec::new();
    for stmt in &fragment.stmts {
        body.push(ctx.lower_stmt(stmt)?);
    }

    // Partition symbols into parameters (declared on the procedure) and
    // locals (loop counters and scalar temporaries introduced by the body).
    let mut params = Vec::new();
    for name in &proc.params {
        let kind = ctx.symbol_kind(name)?;
        params.push(Param {
            name: name.clone(),
            kind,
        });
    }
    let mut locals = Vec::new();
    for name in ctx.referenced.iter() {
        if proc.params.contains(name) {
            continue;
        }
        let kind = ctx.symbol_kind(name)?;
        locals.push(Param {
            name: name.clone(),
            kind,
        });
    }

    let mut assumptions = Vec::new();
    for annotation in &proc.annotations {
        assumptions.push(ctx.lower_expr(&annotation.assumption)?);
    }

    Ok(Kernel {
        name: fragment.name.clone(),
        params,
        locals,
        body,
        assumptions,
    })
}

struct LowerCtx<'a> {
    proc: &'a Procedure,
    referenced: BTreeSet<String>,
}

impl<'a> LowerCtx<'a> {
    fn new(proc: &'a Procedure) -> Self {
        LowerCtx {
            proc,
            referenced: BTreeSet::new(),
        }
    }

    fn symbol_kind(&self, name: &str) -> Result<ParamKind> {
        if let Some(decl) = self.proc.decl(name) {
            if let Some(dims) = &decl.dims {
                let mut bounds = Vec::new();
                for range in dims {
                    bounds.push((
                        self.lower_expr_imm(&range.lower)?,
                        self.lower_expr_imm(&range.upper)?,
                    ));
                }
                return Ok(ParamKind::Array { dims: bounds });
            }
            return Ok(match decl.ty {
                Type::Integer => ParamKind::IntScalar,
                Type::Real => ParamKind::RealScalar,
            });
        }
        // Undeclared names: loop counters and bounds default to integers,
        // matching Fortran implicit typing for the i..n range of names, and
        // anything else defaults to a real scalar.
        let first = name.chars().next().unwrap_or('x');
        if ('i'..='n').contains(&first) {
            Ok(ParamKind::IntScalar)
        } else {
            Ok(ParamKind::RealScalar)
        }
    }

    /// Lowers an expression without recording referenced symbols (used for
    /// declaration bounds, which reference procedure parameters only).
    fn lower_expr_imm(&self, expr: &Expr) -> Result<IrExpr> {
        let mut scratch = LowerCtx {
            proc: self.proc,
            referenced: BTreeSet::new(),
        };
        scratch.lower_expr(expr)
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<IrStmt> {
        match stmt {
            Stmt::Assign { target, value } => {
                let value = self.lower_expr(value)?;
                match target {
                    LValue::Scalar(name) => {
                        self.referenced.insert(name.clone());
                        Ok(IrStmt::AssignScalar {
                            name: name.clone(),
                            value,
                        })
                    }
                    LValue::Array { name, indices } => {
                        if !self.proc.is_array(name) {
                            return Err(Error::lower(format!(
                                "assignment to '{name}' which is not declared as an array"
                            )));
                        }
                        self.referenced.insert(name.clone());
                        let indices = indices
                            .iter()
                            .map(|ix| self.lower_expr(ix))
                            .collect::<Result<Vec<_>>>()?;
                        Ok(IrStmt::Store {
                            array: name.clone(),
                            indices,
                            value,
                        })
                    }
                }
            }
            Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                line,
            } => {
                self.referenced.insert(var.clone());
                let lo = self.lower_expr(lo)?;
                let hi = self.lower_expr(hi)?;
                // Canonicalize the step: any constant step (positive or
                // negative) becomes part of the loop's iteration domain.
                // Only genuinely non-constant and zero steps are rejected
                // here; whether a *negative* step is liftable is decided
                // later by `liftability_check`, with a distinct message.
                let step = match step {
                    None => 1,
                    Some(Expr::Int(v)) => *v,
                    Some(Expr::Neg(inner)) => match inner.as_ref() {
                        Expr::Int(v) => -*v,
                        other => {
                            return Err(Error::unsupported(format!(
                                "loop over '{var}' at line {line} has a non-constant step \
                                 (-{other:?})"
                            )))
                        }
                    },
                    Some(other) => {
                        return Err(Error::unsupported(format!(
                            "loop over '{var}' at line {line} has a non-constant step ({other:?})"
                        )))
                    }
                };
                if step == 0 {
                    return Err(Error::lower(format!(
                        "loop over '{var}' at line {line} has a zero step"
                    )));
                }
                let body = body
                    .iter()
                    .map(|s| self.lower_stmt(s))
                    .collect::<Result<Vec<_>>>()?;
                Ok(IrStmt::Loop {
                    domain: IterDomain::new(var.clone(), lo, hi, step).canonicalize(),
                    body,
                })
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                // Conditionals are representable in the IR (used by the §6.6
                // experiments) but lowering of real candidate fragments keeps
                // them so the lifter can reject the kernel with a precise
                // reason.
                let cond = self.lower_expr(cond)?;
                let then_body = then_body
                    .iter()
                    .map(|s| self.lower_stmt(s))
                    .collect::<Result<Vec<_>>>()?;
                let else_body = else_body
                    .iter()
                    .map(|s| self.lower_stmt(s))
                    .collect::<Result<Vec<_>>>()?;
                Ok(IrStmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            Stmt::Call { name, .. } => Err(Error::unsupported(format!(
                "call to procedure '{name}' inside candidate loop"
            ))),
            Stmt::Exit => Err(Error::unsupported("unstructured control flow: exit")),
            Stmt::Cycle => Err(Error::unsupported("unstructured control flow: cycle")),
        }
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<IrExpr> {
        match expr {
            Expr::Int(v) => Ok(IrExpr::Int(*v)),
            Expr::Real(v) => Ok(IrExpr::Real(*v)),
            Expr::Var(name) => {
                self.referenced.insert(name.clone());
                Ok(IrExpr::Var(name.clone()))
            }
            Expr::ArrayRef { name, indices } => {
                let indices_ir = indices
                    .iter()
                    .map(|ix| self.lower_expr(ix))
                    .collect::<Result<Vec<_>>>()?;
                if self.proc.is_array(name) {
                    self.referenced.insert(name.clone());
                    Ok(IrExpr::Load {
                        array: name.clone(),
                        indices: indices_ir,
                    })
                } else if is_intrinsic(name) {
                    Ok(IrExpr::Call {
                        func: name.clone(),
                        args: indices_ir,
                    })
                } else {
                    Err(Error::unsupported(format!(
                        "call to unknown function '{name}' inside candidate loop"
                    )))
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                let op = match op {
                    BinOpKind::Add => BinOp::Add,
                    BinOpKind::Sub => BinOp::Sub,
                    BinOpKind::Mul => BinOp::Mul,
                    BinOpKind::Div => BinOp::Div,
                };
                Ok(IrExpr::bin(
                    op,
                    self.lower_expr(lhs)?,
                    self.lower_expr(rhs)?,
                ))
            }
            Expr::Neg(inner) => {
                let inner_ir = self.lower_expr(inner)?;
                // Negation of an integer expression stays integral as 0 - e,
                // negation of a data expression is (-1) * e; both encodings
                // are equivalent, and 0 - e works in either domain.
                Ok(IrExpr::sub(IrExpr::Int(0), inner_ir))
            }
            Expr::Call { name, args } => {
                let args = args
                    .iter()
                    .map(|a| self.lower_expr(a))
                    .collect::<Result<Vec<_>>>()?;
                if is_intrinsic(name) {
                    Ok(IrExpr::Call {
                        func: name.clone(),
                        args,
                    })
                } else {
                    Err(Error::unsupported(format!(
                        "call to unknown function '{name}' inside candidate loop"
                    )))
                }
            }
            Expr::Cmp { op, lhs, rhs } => {
                let op = match op {
                    CmpOpKind::Lt => CmpOp::Lt,
                    CmpOpKind::Le => CmpOp::Le,
                    CmpOpKind::Gt => CmpOp::Gt,
                    CmpOpKind::Ge => CmpOp::Ge,
                    CmpOpKind::Eq => CmpOp::Eq,
                    CmpOpKind::Ne => CmpOp::Ne,
                };
                Ok(IrExpr::cmp(
                    op,
                    self.lower_expr(lhs)?,
                    self.lower_expr(rhs)?,
                ))
            }
            Expr::And(a, b) => Ok(IrExpr::And(
                Box::new(self.lower_expr(a)?),
                Box::new(self.lower_expr(b)?),
            )),
            Expr::Or(a, b) => Ok(IrExpr::Or(
                Box::new(self.lower_expr(a)?),
                Box::new(self.lower_expr(b)?),
            )),
            Expr::Not(e) => Ok(IrExpr::Not(Box::new(self.lower_expr(e)?))),
        }
    }
}

/// Checks the constraints the lifter places on a lowered kernel beyond plain
/// lowering (§5.4): no conditionals and only incrementing loops (any
/// constant positive step — strided/tiled domains are first-class, §6.5).
/// Returns a human-readable reason when the kernel is not liftable.
pub fn liftability_check(kernel: &Kernel) -> std::result::Result<(), String> {
    if kernel.has_conditionals() {
        return Err("kernel contains conditional statements".to_string());
    }
    for info in kernel.loops() {
        if info.step < 0 {
            return Err(format!(
                "loop over '{}' is decrementing (step {}); only incrementing loops are liftable",
                info.var, info.step
            ));
        }
    }
    if kernel.output_arrays().is_empty() {
        return Err("kernel writes no output arrays (not a stencil)".to_string());
    }
    Ok(())
}

/// Lowers an annotation-style expression string (used by tests and tools).
///
/// # Errors
///
/// Propagates parser and lowering errors.
pub fn lower_expr_str(proc: &Procedure, text: &str) -> Result<IrExpr> {
    let expr = crate::parser::parse_expr(text)?;
    let mut ctx = LowerCtx::new(proc);
    ctx.lower_expr(&expr)
}

/// Convenience helper used widely by tests, examples, and the corpus: parses
/// source text, identifies candidates in the *first* procedure, and lowers
/// the fragment with the given index.
///
/// # Errors
///
/// Fails if parsing fails, the procedure has no such fragment, or lowering
/// fails.
pub fn kernel_from_source(source: &str, fragment_index: usize) -> Result<Kernel> {
    let program = crate::parser::parse_program(source)?;
    let proc = program
        .procedures
        .first()
        .ok_or_else(|| Error::lower("source contains no procedures"))?;
    let fragments = identify_candidates(proc);
    let fragment = fragments.get(fragment_index).ok_or_else(|| {
        Error::lower(format!(
            "procedure '{}' has no candidate fragment #{fragment_index}",
            proc.name
        ))
    })?;
    lower_fragment(proc, fragment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const RUNNING_EXAMPLE: &str = r#"
procedure sten(imin, imax, jmin, jmax, a, b)
  real (kind=8), dimension(imin:imax, jmin:jmax) :: a
  real (kind=8), dimension(imin:imax, jmin:jmax) :: b
  real :: t
  real :: q
  integer :: i
  integer :: j
  do j = jmin, jmax
    t = b(imin, j)
    do i = imin+1, imax
      q = b(i, j)
      a(i, j) = q + t
      t = q
    enddo
  enddo
end procedure
"#;

    #[test]
    fn lowers_running_example() {
        let kernel = kernel_from_source(RUNNING_EXAMPLE, 0).unwrap();
        assert_eq!(kernel.name, "sten_k0");
        assert_eq!(kernel.params.len(), 6);
        assert_eq!(kernel.output_arrays(), vec!["a".to_string()]);
        assert_eq!(kernel.loop_vars(), vec!["j".to_string(), "i".to_string()]);
        // t, q, i, j become locals (i and j are declared ints; t, q reals).
        let local_names: Vec<&str> = kernel.locals.iter().map(|p| p.name.as_str()).collect();
        assert!(local_names.contains(&"t"));
        assert!(local_names.contains(&"q"));
        assert!(liftability_check(&kernel).is_ok());
    }

    #[test]
    fn rejects_procedure_calls() {
        let src = r#"
procedure p(n, a)
  real, dimension(1:n) :: a
  integer :: i
  do i = 1, n
    call helper(a, i)
    a(i) = 1.0
  enddo
end procedure
"#;
        let program = parse_program(src).unwrap();
        let results = lower_procedure_loops(&program.procedures[0]);
        assert_eq!(results.len(), 1);
        assert!(matches!(results[0], Err(Error::Unsupported { .. })));
    }

    #[test]
    fn decrementing_loop_lowers_but_fails_liftability() {
        let src = r#"
procedure p(n, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  integer :: i
  do i = n, 1, -1
    a(i) = b(i)
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        assert!(!kernel.all_unit_steps());
        let reason = liftability_check(&kernel).unwrap_err();
        assert!(reason.contains("step"));
    }

    #[test]
    fn strided_loop_lowers_and_passes_liftability() {
        let src = r#"
procedure p(n, a, b)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  integer :: i
  do i = 2, n, 2
    a(i) = b(i)
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        assert!(!kernel.all_unit_steps());
        let info = &kernel.loops()[0];
        assert_eq!(info.step, 2);
        assert!(liftability_check(&kernel).is_ok());
    }

    #[test]
    fn constant_step_domains_are_canonicalized() {
        let src = r#"
procedure p(a, b)
  real, dimension(0:12) :: a
  real, dimension(0:12) :: b
  integer :: i
  do i = 1, 10, 4
    a(i) = b(i)
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let info = &kernel.loops()[0];
        // hi is clamped to the last iterate: 1, 5, 9.
        assert_eq!(info.hi, IrExpr::Int(9));
    }

    #[test]
    fn non_constant_step_rejected_with_location() {
        let src = r#"
procedure p(n, s, a)
  integer :: s
  real, dimension(1:n) :: a
  integer :: i
  do i = 1, n, s
    a(i) = 1.0
  enddo
end procedure
"#;
        let program = parse_program(src).unwrap();
        let results = lower_procedure_loops(&program.procedures[0]);
        let err = results[0].as_ref().unwrap_err().to_string();
        assert!(err.contains("non-constant step"), "message: {err}");
        assert!(err.contains("line 6"), "message: {err}");
        assert!(err.contains("'i'"), "message: {err}");
    }

    #[test]
    fn non_constant_negated_step_rejected_with_location() {
        let src = r#"
procedure p(n, s, a)
  integer :: s
  real, dimension(1:n) :: a
  integer :: i
  do i = n, 1, -s
    a(i) = 1.0
  enddo
end procedure
"#;
        let program = parse_program(src).unwrap();
        let results = lower_procedure_loops(&program.procedures[0]);
        let err = results[0].as_ref().unwrap_err().to_string();
        assert!(err.contains("non-constant step"), "message: {err}");
        assert!(err.contains("line 6"), "message: {err}");
    }

    #[test]
    fn zero_step_rejected_with_location() {
        let src = r#"
procedure p(n, a)
  real, dimension(1:n) :: a
  integer :: i
  do i = 1, n, 0
    a(i) = 1.0
  enddo
end procedure
"#;
        let program = parse_program(src).unwrap();
        let results = lower_procedure_loops(&program.procedures[0]);
        let err = results[0].as_ref().unwrap_err().to_string();
        assert!(err.contains("zero step"), "message: {err}");
        assert!(err.contains("line 5"), "message: {err}");
    }

    #[test]
    fn negative_step_message_is_distinct_from_non_constant() {
        let src = r#"
procedure p(n, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  integer :: i
  do i = n, 1, -2
    a(i) = b(i)
  enddo
end procedure
"#;
        // Negative constant steps lower fine (the domain is first-class)…
        let kernel = kernel_from_source(src, 0).unwrap();
        assert_eq!(kernel.loops()[0].step, -2);
        // …but liftability rejects them with a decrementing-specific message.
        let reason = liftability_check(&kernel).unwrap_err();
        assert!(reason.contains("decrementing"), "message: {reason}");
        assert!(!reason.contains("non-constant"), "message: {reason}");
    }

    #[test]
    fn conditional_kernel_fails_liftability() {
        let src = r#"
procedure p(n, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  integer :: i
  do i = 1, n
    if (b(i) > 0.0) then
      a(i) = b(i)
    else
      a(i) = 0.0
    endif
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        assert!(kernel.has_conditionals());
        assert!(liftability_check(&kernel).is_err());
    }

    #[test]
    fn reduction_kernel_fails_liftability_as_non_stencil() {
        let src = r#"
procedure p(n, b)
  real, dimension(1:n) :: b
  real :: s
  integer :: i
  do i = 1, n
    s = s + b(i)
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let reason = liftability_check(&kernel).unwrap_err();
        assert!(reason.contains("no output arrays"));
    }

    #[test]
    fn intrinsics_lower_to_calls() {
        let src = r#"
procedure p(n, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  integer :: i
  do i = 1, n
    a(i) = exp(b(i)) + sqrt(b(i))
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let mut calls = Vec::new();
        for stmt in &kernel.body {
            stmt.walk(&mut |s| {
                if let IrStmt::Store { value, .. } = s {
                    value.walk(&mut |e| {
                        if let IrExpr::Call { func, .. } = e {
                            calls.push(func.clone());
                        }
                    });
                }
            });
        }
        assert_eq!(calls, vec!["exp".to_string(), "sqrt".to_string()]);
    }

    #[test]
    fn annotations_become_assumptions() {
        let src = r#"
procedure p(n, sz0, sz1, a)
  integer :: sz0
  integer :: sz1
  real, dimension(1:n) :: a
  integer :: i
  ! STNG: assume(sz0 /= sz1)
  do i = 1, n
    a(i + sz0 - sz1) = 1.0
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        assert_eq!(kernel.assumptions.len(), 1);
        assert!(matches!(kernel.assumptions[0], IrExpr::Cmp { .. }));
    }

    #[test]
    fn negation_lowers_to_zero_minus() {
        let src = r#"
procedure p(n, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  integer :: i
  do i = 1, n
    a(i) = -b(i)
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let IrStmt::Loop { body, .. } = &kernel.body[0] else {
            panic!()
        };
        let IrStmt::Store { value, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(value.to_string(), "(0 - b[i])");
    }
}
