//! Auto-parallelizing-compiler execution model.
//!
//! The paper compares lifted-and-retargeted code against `ifort -parallel`
//! run on the original Fortran (Table 1, "icc Before"/"icc After" columns,
//! and the §6.5 de-optimization study). We do not have the Intel compiler or
//! the authors' 24-core nodes, so this module provides an explicit analytic
//! model of what such a compiler achieves on a kernel:
//!
//! * if dependence analysis proves the outer loop parallel, the kernel runs
//!   with near-linear speedup on the modelled core count (minus a fork/join
//!   overhead),
//! * if the loop is provably serial, the compiler leaves it alone (speedup 1),
//! * if the loop nest defeats the analysis (non-affine bounds from tiling,
//!   deep artificial nests), the compiler's heuristics are modelled as
//!   *pathological*: the paper reports hand-optimized challenge kernels
//!   running four orders of magnitude slower under auto-parallelization.
//!
//! All parameters of the model are explicit fields so experiments can report
//! them, and the model never touches wall-clock time: it converts a measured
//! serial execution time into a simulated parallel time.

use crate::depend::{analyze_outer_loop, ParallelizationVerdict};
use crate::ir::Kernel;
use std::time::Duration;

/// Configuration of the modelled auto-parallelizing compiler and machine.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoParModel {
    /// Number of cores of the modelled machine (the paper's nodes have 24).
    pub cores: usize,
    /// Parallel efficiency on loops the compiler does parallelize.
    pub efficiency: f64,
    /// Per-invocation fork/join overhead as a fraction of serial time.
    pub overhead_fraction: f64,
    /// Slowdown factor applied when optimization heuristics go pathological
    /// on non-analyzable, hand-optimized code (§6.5 reports ~10⁴×).
    pub pathological_slowdown: f64,
}

impl Default for AutoParModel {
    fn default() -> Self {
        AutoParModel {
            cores: 24,
            efficiency: 0.85,
            overhead_fraction: 0.02,
            pathological_slowdown: 5000.0,
        }
    }
}

/// The outcome of running the model on one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoParOutcome {
    /// The dependence-analysis verdict the model is based on.
    pub verdict: ParallelizationVerdict,
    /// Speedup relative to the serial execution (values below 1 mean the
    /// "optimized" code is slower).
    pub speedup: f64,
}

impl AutoParModel {
    /// Creates a model with the given core count and default efficiency.
    pub fn with_cores(cores: usize) -> Self {
        AutoParModel {
            cores,
            ..AutoParModel::default()
        }
    }

    /// Analyzes `kernel` and returns the modelled speedup.
    pub fn analyze(&self, kernel: &Kernel) -> AutoParOutcome {
        let verdict = analyze_outer_loop(kernel);
        let speedup = match &verdict {
            ParallelizationVerdict::Parallel => {
                let ideal = self.cores as f64 * self.efficiency;
                ideal / (1.0 + self.overhead_fraction * ideal)
            }
            ParallelizationVerdict::Serial(_) => 1.0,
            ParallelizationVerdict::NotAnalyzable(_) => 1.0 / self.pathological_slowdown,
        };
        AutoParOutcome { verdict, speedup }
    }

    /// Converts a measured serial execution time into the simulated time under
    /// this model for the given kernel.
    pub fn simulated_time(&self, kernel: &Kernel, serial: Duration) -> Duration {
        let outcome = self.analyze(kernel);
        let secs = serial.as_secs_f64() / outcome.speedup;
        Duration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::kernel_from_source;

    fn parallel_kernel() -> Kernel {
        kernel_from_source(
            r#"
procedure p(n, m, a, b)
  real, dimension(1:n, 1:m) :: a
  real, dimension(1:n, 1:m) :: b
  integer :: i
  integer :: j
  do j = 1, m
    do i = 1, n
      a(i, j) = b(i, j) * 2.0
    enddo
  enddo
end procedure
"#,
            0,
        )
        .unwrap()
    }

    fn serial_kernel() -> Kernel {
        kernel_from_source(
            r#"
procedure p(n, a)
  real, dimension(0:n) :: a
  integer :: i
  do i = 1, n
    a(i) = a(i-1) * 0.5
  enddo
end procedure
"#,
            0,
        )
        .unwrap()
    }

    fn pathological_kernel() -> Kernel {
        kernel_from_source(
            r#"
procedure p(n, nb, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  integer :: ii
  integer :: i
  do ii = 1, n
    do i = ii*nb, min(n, ii*nb + nb)
      a(i) = b(i)
    enddo
  enddo
end procedure
"#,
            0,
        )
        .unwrap()
    }

    #[test]
    fn parallel_kernel_gets_near_linear_speedup() {
        let model = AutoParModel::default();
        let outcome = model.analyze(&parallel_kernel());
        assert!(outcome.verdict.is_parallel());
        assert!(outcome.speedup > 10.0 && outcome.speedup <= 24.0);
    }

    #[test]
    fn serial_kernel_keeps_speedup_one() {
        let model = AutoParModel::default();
        let outcome = model.analyze(&serial_kernel());
        assert_eq!(outcome.speedup, 1.0);
    }

    #[test]
    fn pathological_kernel_slows_down() {
        let model = AutoParModel::default();
        let outcome = model.analyze(&pathological_kernel());
        assert!(outcome.speedup < 1e-3);
    }

    #[test]
    fn simulated_time_scales_serial_time() {
        let model = AutoParModel::with_cores(8);
        let serial = Duration::from_millis(800);
        let t = model.simulated_time(&parallel_kernel(), serial);
        assert!(t < serial);
        let t = model.simulated_time(&pathological_kernel(), serial);
        assert!(t > serial);
    }
}
