//! Canonical alpha-renaming and structural fingerprinting of lowered
//! kernels.
//!
//! Real legacy suites contain thousands of near-duplicate kernels that
//! differ only by identifier renaming and formatting. To deduplicate lifting
//! work, a kernel is mapped to a **canonical form**: every parameter is
//! renamed to `p<k>` (by declaration position) and every local to `l<k>`,
//! the kernel name is erased, and the result is printed deterministically.
//! Two kernels have the same canonical text — and therefore the same
//! [`Canon::fingerprint`] — iff they are alpha-equivalent lowered programs:
//! same statement structure, same [`crate::ir::IterDomain`]s (bounds, steps),
//! same stencil coefficients, same array dimension declarations, same
//! assumptions. Whitespace never reaches this layer (the parser discards
//! it), so formatting variants collide for free.
//!
//! The fingerprint is a 128-bit FNV-1a hash (two independently seeded 64-bit
//! streams) of the canonical text; the service layer uses it — together with
//! a pipeline-configuration digest — as the lifting-cache key, and keeps the
//! canonical text alongside persisted entries so collisions are detectable.

use crate::ir::{IrExpr, IrStmt, Kernel, Param, ParamKind};
use std::collections::HashMap;
use std::fmt::Write as _;

/// The canonical form of one lowered kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Canon {
    /// 128-bit structural fingerprint of [`Canon::text`].
    pub fingerprint: u128,
    /// Deterministic print of the alpha-renamed kernel.
    pub text: String,
    /// Rename map: actual symbol name → canonical name.
    pub to_canonical: HashMap<String, String>,
    /// Inverse rename map: canonical name → actual symbol name.
    pub from_canonical: HashMap<String, String>,
}

impl Canon {
    /// The fingerprint as a fixed-width hex string (stable cache file key).
    pub fn fingerprint_hex(&self) -> String {
        format!("{:032x}", self.fingerprint)
    }
}

/// 64-bit FNV-1a over `bytes`, from an arbitrary seed (the standard offset
/// basis for the primary stream; any other seed yields an independent hash).
pub fn fnv1a64(bytes: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// 128-bit structural hash of a text: two independently seeded FNV-1a
/// streams. Not cryptographic — collision detection is backed by storing the
/// canonical text next to persisted entries.
pub fn fingerprint128(text: &str) -> u128 {
    let hi = fnv1a64(text.as_bytes(), 0xcbf2_9ce4_8422_2325);
    let lo = fnv1a64(text.as_bytes(), 0x6c62_272e_07bb_0142);
    ((hi as u128) << 64) | lo as u128
}

/// Renames every symbol of `expr` that appears in `map` (scalar variables,
/// array names in loads, and function names — pure math functions like `exp`
/// are not kernel symbols and pass through unchanged).
pub fn rename_expr(expr: &IrExpr, map: &HashMap<String, String>) -> IrExpr {
    let rename = |n: &String| map.get(n).unwrap_or(n).clone();
    match expr {
        IrExpr::Int(_) | IrExpr::Real(_) => expr.clone(),
        IrExpr::Var(n) => IrExpr::Var(rename(n)),
        IrExpr::Load { array, indices } => IrExpr::Load {
            array: rename(array),
            indices: indices.iter().map(|ix| rename_expr(ix, map)).collect(),
        },
        IrExpr::Bin { op, lhs, rhs } => IrExpr::Bin {
            op: *op,
            lhs: Box::new(rename_expr(lhs, map)),
            rhs: Box::new(rename_expr(rhs, map)),
        },
        IrExpr::Call { func, args } => IrExpr::Call {
            func: rename(func),
            args: args.iter().map(|a| rename_expr(a, map)).collect(),
        },
        IrExpr::Cmp { op, lhs, rhs } => IrExpr::Cmp {
            op: *op,
            lhs: Box::new(rename_expr(lhs, map)),
            rhs: Box::new(rename_expr(rhs, map)),
        },
        IrExpr::And(a, b) => {
            IrExpr::And(Box::new(rename_expr(a, map)), Box::new(rename_expr(b, map)))
        }
        IrExpr::Or(a, b) => {
            IrExpr::Or(Box::new(rename_expr(a, map)), Box::new(rename_expr(b, map)))
        }
        IrExpr::Not(e) => IrExpr::Not(Box::new(rename_expr(e, map))),
    }
}

fn rename_stmt(stmt: &IrStmt, map: &HashMap<String, String>) -> IrStmt {
    let rename = |n: &String| map.get(n).unwrap_or(n).clone();
    match stmt {
        IrStmt::AssignScalar { name, value } => IrStmt::AssignScalar {
            name: rename(name),
            value: rename_expr(value, map),
        },
        IrStmt::Store {
            array,
            indices,
            value,
        } => IrStmt::Store {
            array: rename(array),
            indices: indices.iter().map(|ix| rename_expr(ix, map)).collect(),
            value: rename_expr(value, map),
        },
        IrStmt::Loop { domain, body } => {
            let mut domain = domain.clone();
            domain.var = rename(&domain.var);
            domain.lo = rename_expr(&domain.lo, map);
            domain.hi = rename_expr(&domain.hi, map);
            IrStmt::Loop {
                domain,
                body: body.iter().map(|s| rename_stmt(s, map)).collect(),
            }
        }
        IrStmt::If {
            cond,
            then_body,
            else_body,
        } => IrStmt::If {
            cond: rename_expr(cond, map),
            then_body: then_body.iter().map(|s| rename_stmt(s, map)).collect(),
            else_body: else_body.iter().map(|s| rename_stmt(s, map)).collect(),
        },
    }
}

fn rename_param(param: &Param, map: &HashMap<String, String>) -> Param {
    let kind = match &param.kind {
        ParamKind::Array { dims } => ParamKind::Array {
            dims: dims
                .iter()
                .map(|(lo, hi)| (rename_expr(lo, map), rename_expr(hi, map)))
                .collect(),
        },
        other => other.clone(),
    };
    Param {
        name: map.get(&param.name).unwrap_or(&param.name).clone(),
        kind,
    }
}

/// Applies a symbol rename map to a whole kernel (name untouched). Used by
/// the canonicalizer and by the fingerprint property tests to build
/// alpha-variants directly at the IR level.
pub fn rename_kernel(kernel: &Kernel, map: &HashMap<String, String>) -> Kernel {
    Kernel {
        name: kernel.name.clone(),
        params: kernel.params.iter().map(|p| rename_param(p, map)).collect(),
        locals: kernel.locals.iter().map(|p| rename_param(p, map)).collect(),
        body: kernel.body.iter().map(|s| rename_stmt(s, map)).collect(),
        assumptions: kernel
            .assumptions
            .iter()
            .map(|a| rename_expr(a, map))
            .collect(),
    }
}

fn write_expr(out: &mut String, e: &IrExpr) {
    // `IrExpr::Display` is fully parenthesized and deterministic; reuse it.
    write!(out, "{e}").expect("writing to a String cannot fail");
}

fn write_stmts(out: &mut String, stmts: &[IrStmt]) {
    for stmt in stmts {
        match stmt {
            IrStmt::AssignScalar { name, value } => {
                out.push_str("(= ");
                out.push_str(name);
                out.push(' ');
                write_expr(out, value);
                out.push(')');
            }
            IrStmt::Store {
                array,
                indices,
                value,
            } => {
                out.push_str("(store ");
                out.push_str(array);
                out.push('[');
                for (k, ix) in indices.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_expr(out, ix);
                }
                out.push_str("] ");
                write_expr(out, value);
                out.push(')');
            }
            IrStmt::Loop { domain, body } => {
                out.push_str("(loop ");
                write!(out, "{domain}").expect("writing to a String cannot fail");
                out.push_str(" {");
                write_stmts(out, body);
                out.push_str("})");
            }
            IrStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                out.push_str("(if ");
                write_expr(out, cond);
                out.push_str(" {");
                write_stmts(out, then_body);
                out.push_str("} {");
                write_stmts(out, else_body);
                out.push_str("})");
            }
        }
    }
}

/// Canonicalizes a lowered kernel: builds the positional rename maps,
/// renames, and prints the canonical text. The kernel *name* is excluded on
/// purpose (a renamed procedure must collide with its original).
pub fn canonicalize(kernel: &Kernel) -> Canon {
    let mut to_canonical = HashMap::new();
    for (k, p) in kernel.params.iter().enumerate() {
        to_canonical.insert(p.name.clone(), format!("p{k}"));
    }
    for (k, p) in kernel.locals.iter().enumerate() {
        to_canonical.insert(p.name.clone(), format!("l{k}"));
    }
    let renamed = rename_kernel(kernel, &to_canonical);

    let mut text = String::with_capacity(512);
    text.push_str("params:");
    for p in &renamed.params {
        write_param(&mut text, p);
    }
    text.push_str("\nlocals:");
    for p in &renamed.locals {
        write_param(&mut text, p);
    }
    text.push_str("\nassume:");
    for a in &renamed.assumptions {
        text.push(' ');
        write_expr(&mut text, a);
    }
    text.push_str("\nbody:");
    write_stmts(&mut text, &renamed.body);
    text.push('\n');

    let from_canonical = to_canonical
        .iter()
        .map(|(k, v)| (v.clone(), k.clone()))
        .collect();
    Canon {
        fingerprint: fingerprint128(&text),
        text,
        to_canonical,
        from_canonical,
    }
}

fn write_param(out: &mut String, p: &Param) {
    out.push(' ');
    out.push_str(&p.name);
    match &p.kind {
        ParamKind::IntScalar => out.push_str(":int"),
        ParamKind::RealScalar => out.push_str(":real"),
        ParamKind::Array { dims } => {
            out.push_str(":real[");
            for (k, (lo, hi)) in dims.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_expr(out, lo);
                out.push(':');
                write_expr(out, hi);
            }
            out.push(']');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::kernel_from_source;

    const BASE: &str = r#"
procedure heat(nx, a, b, c0)
  integer :: nx
  real, dimension(0:nx) :: a
  real, dimension(0:nx) :: b
  real :: c0
  integer :: i
  do i = 1, nx-1
    a(i) = c0 * b(i) + b(i-1) + b(i+1)
  enddo
end procedure
"#;

    const RENAMED: &str = r#"
procedure warm(mz, out, src, w)
  integer :: mz
  real, dimension(0:mz) :: out
  real, dimension(0:mz) :: src
  real :: w
  integer :: q
  do q = 1, mz-1
    out(q) = w * src(q) + src(q-1) + src(q+1)
  enddo
end procedure
"#;

    const WHITESPACED: &str = r#"


procedure heat( nx, a, b, c0 )
  integer ::   nx
  real, dimension( 0 : nx ) :: a
  real, dimension(0:nx) :: b
  real ::  c0
  integer :: i
  do i = 1,  nx - 1
      a(i) =   c0 * b(i) + b(i-1) + b(i+1)
  enddo
end procedure
"#;

    const DIFFERENT_COEFF: &str = r#"
procedure heat(nx, a, b, c0)
  integer :: nx
  real, dimension(0:nx) :: a
  real, dimension(0:nx) :: b
  real :: c0
  integer :: i
  do i = 1, nx-1
    a(i) = c0 * b(i) + 2.0 * b(i-1) + b(i+1)
  enddo
end procedure
"#;

    const DIFFERENT_DOMAIN: &str = r#"
procedure heat(nx, a, b, c0)
  integer :: nx
  real, dimension(0:nx) :: a
  real, dimension(0:nx) :: b
  real :: c0
  integer :: i
  do i = 1, nx-1, 2
    a(i) = c0 * b(i) + b(i-1) + b(i+1)
  enddo
end procedure
"#;

    fn canon_of(src: &str) -> Canon {
        canonicalize(&kernel_from_source(src, 0).expect("kernel lowers"))
    }

    #[test]
    fn alpha_renaming_and_whitespace_collide() {
        let base = canon_of(BASE);
        assert_eq!(base.fingerprint, canon_of(RENAMED).fingerprint);
        assert_eq!(base.text, canon_of(RENAMED).text);
        assert_eq!(base.fingerprint, canon_of(WHITESPACED).fingerprint);
    }

    #[test]
    fn coefficient_and_domain_changes_are_detected() {
        let base = canon_of(BASE);
        assert_ne!(base.fingerprint, canon_of(DIFFERENT_COEFF).fingerprint);
        assert_ne!(base.fingerprint, canon_of(DIFFERENT_DOMAIN).fingerprint);
    }

    #[test]
    fn rename_maps_invert_each_other() {
        let canon = canon_of(BASE);
        assert_eq!(canon.to_canonical["a"], "p1");
        assert_eq!(canon.from_canonical["p1"], "a");
        for (actual, canonical) in &canon.to_canonical {
            assert_eq!(&canon.from_canonical[canonical], actual);
        }
    }

    #[test]
    fn rename_expr_touches_only_mapped_symbols() {
        let mut map = HashMap::new();
        map.insert("b".to_string(), "src".to_string());
        let e = IrExpr::Call {
            func: "exp".into(),
            args: vec![IrExpr::Load {
                array: "b".into(),
                indices: vec![IrExpr::var("i")],
            }],
        };
        let renamed = rename_expr(&e, &map);
        assert_eq!(renamed.to_string(), "exp(src[i])");
    }

    #[test]
    fn fingerprint_hex_is_stable_width() {
        let canon = canon_of(BASE);
        assert_eq!(canon.fingerprint_hex().len(), 32);
        assert_eq!(canon.fingerprint_hex(), canon_of(BASE).fingerprint_hex());
    }
}
