//! The benchmark corpus: stencil kernels in the Fortran subset for every
//! suite of the paper's evaluation (§6.1), plus the negative cases that
//! exercise Table 2's "untranslated" and "non-stencil" columns.
//!
//! The original applications (CloverLeaf, NAS MG, TERRA, NFFS-FVM) cannot be
//! redistributed here; each corpus kernel implements the stencil pattern the
//! paper describes for its suite (dimensionality, point count, scalar
//! temporaries, hand optimizations), which is what drives both synthesis
//! difficulty and the performance shape. See DESIGN.md §2 for the
//! substitution argument.

use stng_ir::ir::Kernel;
use stng_ir::lower::kernel_from_source;

/// The benchmark suites of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// StencilMark microbenchmarks (3D kernels).
    StencilMark,
    /// NAS MG multigrid kernels.
    NasMg,
    /// CloverLeaf hydrodynamics mini-app kernels (2D staggered grid).
    CloverLeaf,
    /// TERRA mantle-convection kernel (high-dimensional arrays).
    Terra,
    /// NFFS-FVM finite-volume fluid/heat kernels (3D).
    NffsFvm,
    /// Hand-optimized 27-point challenge problems.
    Challenge,
}

impl Suite {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Suite::StencilMark => "StencilMark",
            Suite::NasMg => "NAS MG",
            Suite::CloverLeaf => "CloverLeaf",
            Suite::Terra => "TERRA",
            Suite::NffsFvm => "NFFS-FVM",
            Suite::Challenge => "Challenge",
        }
    }

    /// All suites in the order the paper lists them.
    pub fn all() -> [Suite; 6] {
        [
            Suite::StencilMark,
            Suite::NasMg,
            Suite::CloverLeaf,
            Suite::Terra,
            Suite::NffsFvm,
            Suite::Challenge,
        ]
    }
}

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusKernel {
    /// Suite the kernel belongs to.
    pub suite: Suite,
    /// Kernel name (used as the row label in the regenerated tables).
    pub name: String,
    /// Fortran-subset source.
    pub source: String,
    /// Whether the kernel is actually a stencil (used to classify failures
    /// into "untranslated stencils" vs "non-stencils" in Table 2).
    pub is_stencil: bool,
    /// Grid extent used for performance measurements.
    pub grid: i64,
}

impl CorpusKernel {
    /// Lowers the first candidate fragment of the kernel (convenience for
    /// tests and benches that need the IR directly).
    ///
    /// # Errors
    ///
    /// Propagates parse/lowering errors (some negative cases fail here by
    /// design).
    pub fn kernel(&self) -> stng_ir::error::Result<Kernel> {
        kernel_from_source(&self.source, 0)
    }
}

fn entry(suite: Suite, name: &str, grid: i64, is_stencil: bool, source: String) -> CorpusKernel {
    CorpusKernel {
        suite,
        name: name.to_string(),
        source,
        is_stencil,
        grid,
    }
}

/// A CloverLeaf-style 2D kernel over a staggered grid: `out(j,k)` combines a
/// handful of neighbouring cells of two input fields with coefficients.
fn cloverleaf_kernel(name: &str, offsets: &[(i64, i64)], coeff: f64, with_temp: bool) -> String {
    let mut terms: Vec<String> = offsets
        .iter()
        .map(|(dj, dk)| {
            let j = offset_str("j", *dj);
            let k = offset_str("k", *dk);
            format!("density({j}, {k})")
        })
        .collect();
    terms.push("energy(j, k)".to_string());
    let body = if with_temp {
        format!(
            "      t = {coeff} * density(j-1, k)\n      out(j, k) = t + {}",
            terms.join(" + ")
        )
    } else {
        format!("      out(j, k) = {coeff} * ({})", terms.join(" + "))
    };
    format!(
        r#"
procedure {name}(x_min, x_max, y_min, y_max, out, density, energy)
  integer :: x_min
  integer :: x_max
  integer :: y_min
  integer :: y_max
  real, dimension(x_min:x_max, y_min:y_max) :: out
  real, dimension(x_min:x_max, y_min:y_max) :: density
  real, dimension(x_min:x_max, y_min:y_max) :: energy
  real :: t
  integer :: j
  integer :: k
  do k = y_min+1, y_max
    do j = x_min+1, x_max
{body}
    enddo
  enddo
end procedure
"#
    )
}

fn offset_str(var: &str, off: i64) -> String {
    match off.cmp(&0) {
        std::cmp::Ordering::Equal => var.to_string(),
        std::cmp::Ordering::Greater => format!("{var}+{off}"),
        std::cmp::Ordering::Less => format!("{var}{off}"),
    }
}

/// An NFFS-FVM-style 3D geometry/flux kernel.
fn nffs_kernel(name: &str, scale: f64, divide: bool) -> String {
    let rhs = if divide {
        format!("(phi(i+1, j, k) - phi(i-1, j, k)) / {scale} + src(i, j, k)")
    } else {
        format!("{scale} * (phi(i, j+1, k) + phi(i, j-1, k)) + src(i, j, k)")
    };
    format!(
        r#"
procedure {name}(nx, ny, nz, flux, phi, src)
  integer :: nx
  integer :: ny
  integer :: nz
  real, dimension(0:nx, 0:ny, 0:nz) :: flux
  real, dimension(0:nx, 0:ny, 0:nz) :: phi
  real, dimension(0:nx, 0:ny, 0:nz) :: src
  integer :: i
  integer :: j
  integer :: k
  do k = 1, nz-1
    do j = 1, ny-1
      do i = 1, nx-1
        flux(i, j, k) = {rhs}
      enddo
    enddo
  enddo
end procedure
"#
    )
}

/// The full corpus, in suite order.
#[allow(clippy::vec_init_then_push)]
pub fn all_kernels() -> Vec<CorpusKernel> {
    let mut out = Vec::new();

    // ---- StencilMark: the four 3D microbenchmark kernels. --------------
    out.push(entry(
        Suite::StencilMark,
        "heat0",
        28,
        true,
        r#"
procedure heat0(nx, ny, nz, anext, aprev)
  integer :: nx
  integer :: ny
  integer :: nz
  real, dimension(0:nx, 0:ny, 0:nz) :: anext
  real, dimension(0:nx, 0:ny, 0:nz) :: aprev
  integer :: i
  integer :: j
  integer :: k
  do k = 1, nz-1
    do j = 1, ny-1
      do i = 1, nx-1
        anext(i, j, k) = aprev(i-1, j, k) + aprev(i+1, j, k) + aprev(i, j-1, k) + aprev(i, j+1, k) + aprev(i, j, k-1) + aprev(i, j, k+1) - 6.0 * aprev(i, j, k)
      enddo
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));
    // An alpha-renamed duplicate of heat0: every identifier is different,
    // the structure is byte-for-byte the same after canonical renaming. It
    // must fingerprint-collide with heat0 (pinned by a test below), so the
    // lifting cache dedups it — the situation hierarchical lifting of legacy
    // HPC suites hits constantly.
    out.push(entry(
        Suite::StencilMark,
        "heat0_renamed",
        28,
        true,
        r#"
procedure heat0_renamed(mx, my, mz, bnext, bprev)
  integer :: mx
  integer :: my
  integer :: mz
  real, dimension(0:mx, 0:my, 0:mz) :: bnext
  real, dimension(0:mx, 0:my, 0:mz) :: bprev
  integer :: p
  integer :: q
  integer :: r
  do r = 1, mz-1
    do q = 1, my-1
      do p = 1, mx-1
        bnext(p, q, r) = bprev(p-1, q, r) + bprev(p+1, q, r) + bprev(p, q-1, r) + bprev(p, q+1, r) + bprev(p, q, r-1) + bprev(p, q, r+1) - 6.0 * bprev(p, q, r)
      enddo
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));
    out.push(entry(
        Suite::StencilMark,
        "div0",
        28,
        true,
        r#"
procedure div0(nx, ny, nz, d, ux, uy, uz)
  integer :: nx
  integer :: ny
  integer :: nz
  real, dimension(0:nx, 0:ny, 0:nz) :: d
  real, dimension(0:nx, 0:ny, 0:nz) :: ux
  real, dimension(0:nx, 0:ny, 0:nz) :: uy
  real, dimension(0:nx, 0:ny, 0:nz) :: uz
  integer :: i
  integer :: j
  integer :: k
  do k = 1, nz-1
    do j = 1, ny-1
      do i = 1, nx-1
        d(i, j, k) = 0.5 * (ux(i+1, j, k) - ux(i-1, j, k)) + 0.5 * (uy(i, j+1, k) - uy(i, j-1, k)) + 0.5 * (uz(i, j, k+1) - uz(i, j, k-1))
      enddo
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));
    out.push(entry(
        Suite::StencilMark,
        "grad0",
        28,
        true,
        r#"
procedure grad0(nx, ny, nz, gx, gy, gz, p)
  integer :: nx
  integer :: ny
  integer :: nz
  real, dimension(0:nx, 0:ny, 0:nz) :: gx
  real, dimension(0:nx, 0:ny, 0:nz) :: gy
  real, dimension(0:nx, 0:ny, 0:nz) :: gz
  real, dimension(0:nx, 0:ny, 0:nz) :: p
  integer :: i
  integer :: j
  integer :: k
  do k = 1, nz-1
    do j = 1, ny-1
      do i = 1, nx-1
        gx(i, j, k) = 0.5 * (p(i+1, j, k) - p(i-1, j, k))
        gy(i, j, k) = 0.5 * (p(i, j+1, k) - p(i, j-1, k))
        gz(i, j, k) = 0.5 * (p(i, j, k+1) - p(i, j, k-1))
      enddo
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));
    out.push(entry(
        Suite::StencilMark,
        "lap0",
        28,
        true,
        r#"
procedure lap0(nx, ny, nz, l, u, alpha, beta)
  integer :: nx
  integer :: ny
  integer :: nz
  real, dimension(0:nx, 0:ny, 0:nz) :: l
  real, dimension(0:nx, 0:ny, 0:nz) :: u
  real :: alpha
  real :: beta
  integer :: i
  integer :: j
  integer :: k
  do k = 1, nz-1
    do j = 1, ny-1
      do i = 1, nx-1
        l(i, j, k) = alpha * u(i, j, k) + beta * (u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1))
      enddo
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));

    // ---- NAS MG: residual, restriction-like, interpolation-like. --------
    out.push(entry(
        Suite::NasMg,
        "mg_resid",
        24,
        true,
        r#"
procedure mg_resid(n1, n2, n3, r, u, v)
  integer :: n1
  integer :: n2
  integer :: n3
  real, dimension(0:n1, 0:n2, 0:n3) :: r
  real, dimension(0:n1, 0:n2, 0:n3) :: u
  real, dimension(0:n1, 0:n2, 0:n3) :: v
  integer :: i1
  integer :: i2
  integer :: i3
  do i3 = 1, n3-1
    do i2 = 1, n2-1
      do i1 = 1, n1-1
        r(i1, i2, i3) = v(i1, i2, i3) - 0.75 * u(i1, i2, i3) - 0.0416 * (u(i1-1, i2, i3) + u(i1+1, i2, i3) + u(i1, i2-1, i3) + u(i1, i2+1, i3) + u(i1, i2, i3-1) + u(i1, i2, i3+1))
      enddo
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));
    out.push(entry(
        Suite::NasMg,
        "mg_smooth",
        24,
        true,
        r#"
procedure mg_smooth(n1, n2, n3, u, r)
  integer :: n1
  integer :: n2
  integer :: n3
  real, dimension(0:n1, 0:n2, 0:n3) :: u
  real, dimension(0:n1, 0:n2, 0:n3) :: r
  real :: c0
  real :: c1
  integer :: i1
  integer :: i2
  integer :: i3
  do i3 = 1, n3-1
    do i2 = 1, n2-1
      do i1 = 1, n1-1
        u(i1, i2, i3) = c0 * r(i1, i2, i3) + c1 * (r(i1-1, i2, i3) + r(i1+1, i2, i3) + r(i1, i2-1, i3) + r(i1, i2+1, i3))
      enddo
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));
    // A reduction loop flagged by the liberal front end but not a stencil
    // (contributes to the "Non Stencils" column like the norm computation in
    // the real MG).
    out.push(entry(
        Suite::NasMg,
        "mg_norm",
        24,
        false,
        r#"
procedure mg_norm(n1, n2, n3, r)
  integer :: n1
  integer :: n2
  integer :: n3
  real, dimension(0:n1, 0:n2, 0:n3) :: r
  real :: s
  integer :: i1
  integer :: i2
  integer :: i3
  do i3 = 1, n3-1
    do i2 = 1, n2-1
      do i1 = 1, n1-1
        s = s + r(i1, i2, i3) * r(i1, i2, i3)
      enddo
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));

    // ---- CloverLeaf: a family of 2D staggered-grid kernels. -------------
    type CloverSpec = (&'static str, Vec<(i64, i64)>, f64, bool);
    let clover_specs: Vec<CloverSpec> = vec![
        (
            "akl81",
            vec![(0, 0), (-1, 0), (0, -1), (-1, -1)],
            0.25,
            true,
        ),
        ("akl83", vec![(0, 0), (-1, 0)], 0.5, false),
        ("akl84", vec![(0, 0), (0, -1)], 0.5, false),
        ("akl85", vec![(0, 0), (1, 0)], 0.5, false),
        ("ackl95", vec![(0, 0), (-1, 0), (1, 0)], 0.3333, false),
        ("amkl100", vec![(0, 0), (0, 1), (0, -1)], 0.3333, true),
        ("fckl89", vec![(0, 0), (-1, 0), (0, -1)], 1.0, false),
        ("gckl77", vec![(0, 0)], 2.0, false),
        ("ickl10", vec![(0, 0), (1, 1)], 1.0, false),
        ("rfkl109", vec![(0, 0), (-1, -1), (1, 1)], 0.5, false),
    ];
    for (name, offsets, coeff, with_temp) in clover_specs {
        out.push(entry(
            Suite::CloverLeaf,
            name,
            96,
            true,
            cloverleaf_kernel(name, &offsets, coeff, with_temp),
        ));
    }
    // A decrementing-loop kernel: a real stencil the prototype cannot
    // translate (Table 2, "Untranslated Stencils").
    out.push(entry(
        Suite::CloverLeaf,
        "akl_rev",
        96,
        true,
        r#"
procedure akl_rev(x_min, x_max, y_min, y_max, out, density)
  integer :: x_min
  integer :: x_max
  integer :: y_min
  integer :: y_max
  real, dimension(x_min:x_max, y_min:y_max) :: out
  real, dimension(x_min:x_max, y_min:y_max) :: density
  integer :: j
  integer :: k
  do k = y_max, y_min, -1
    do j = x_min, x_max
      out(j, k) = density(j, k) * 0.5
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));
    // A boundary-condition kernel (conditional): also untranslated.
    out.push(entry(
        Suite::CloverLeaf,
        "akl_bc",
        96,
        true,
        r#"
procedure akl_bc(x_min, x_max, y_min, y_max, out, density)
  integer :: x_min
  integer :: x_max
  integer :: y_min
  integer :: y_max
  real, dimension(x_min:x_max, y_min:y_max) :: out
  real, dimension(x_min:x_max, y_min:y_max) :: density
  integer :: j
  integer :: k
  do k = y_min, y_max
    do j = x_min, x_max
      if (j == x_min) then
        out(j, k) = 0.0
      else
        out(j, k) = density(j-1, k) + density(j, k)
      endif
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));

    // ---- TERRA: a higher-dimensional kernel (4D here; the paper's arrays
    // go to 5D, which the pipeline supports but is slow to execute in a
    // test-suite setting). -------------------------------------------------
    out.push(entry(
        Suite::Terra,
        "terra_conv",
        8,
        true,
        r#"
procedure terra_conv(nr, nt, np, nv, fld, prev)
  integer :: nr
  integer :: nt
  integer :: np
  integer :: nv
  real, dimension(0:nr, 0:nt, 0:np, 0:nv) :: fld
  real, dimension(0:nr, 0:nt, 0:np, 0:nv) :: prev
  integer :: ir
  integer :: it
  integer :: ip
  integer :: iv
  do iv = 0, nv
    do ip = 1, np-1
      do it = 1, nt-1
        do ir = 1, nr-1
          fld(ir, it, ip, iv) = 0.125 * (prev(ir-1, it, ip, iv) + prev(ir+1, it, ip, iv) + prev(ir, it-1, ip, iv) + prev(ir, it+1, ip, iv) + prev(ir, it, ip-1, iv) + prev(ir, it, ip+1, iv)) + 0.25 * prev(ir, it, ip, iv)
        enddo
      enddo
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));

    // ---- NFFS-FVM: geometry / flux kernels. ------------------------------
    let nffs_specs: Vec<(&str, f64, bool)> = vec![
        ("geomet0", 0.5, false),
        ("geomet1", 0.25, false),
        ("geomet2", 2.0, true),
        ("calcph0", 4.0, true),
        ("simple0", 1.5, false),
        ("meclfu0", 8.0, true),
    ];
    for (name, scale, divide) in nffs_specs {
        out.push(entry(
            Suite::NffsFvm,
            name,
            24,
            true,
            nffs_kernel(name, scale, divide),
        ));
    }
    // An initialization kernel with a pure function call.
    out.push(entry(
        Suite::NffsFvm,
        "initial0",
        24,
        true,
        r#"
procedure initial0(nx, ny, nz, field, coord)
  integer :: nx
  integer :: ny
  integer :: nz
  real, dimension(0:nx, 0:ny, 0:nz) :: field
  real, dimension(0:nx, 0:ny, 0:nz) :: coord
  integer :: i
  integer :: j
  integer :: k
  do k = 0, nz
    do j = 0, ny
      do i = 0, nx
        field(i, j, k) = exp(coord(i, j, k)) * 0.01
      enddo
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));
    // An indirect-access loop: never even flagged as a candidate.
    out.push(entry(
        Suite::NffsFvm,
        "gather0",
        24,
        false,
        r#"
procedure gather0(n, a, b, idx)
  integer :: n
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  real, dimension(0:n) :: idx
  integer :: i
  do i = 1, n
    a(idx(i)) = b(i)
  enddo
end procedure
"#
        .to_string(),
    ));

    // ---- Challenge: hand-optimized 27-point 3D stencils. -----------------
    out.push(entry(
        Suite::Challenge,
        "heat27",
        20,
        true,
        r#"
procedure heat27(nx, ny, nz, anext, aprev, c0, c1)
  integer :: nx
  integer :: ny
  integer :: nz
  real, dimension(0:nx, 0:ny, 0:nz) :: anext
  real, dimension(0:nx, 0:ny, 0:nz) :: aprev
  real :: c0
  real :: c1
  integer :: i
  integer :: j
  integer :: k
  do k = 1, nz-1
    do j = 1, ny-1
      do i = 1, nx-1
        anext(i, j, k) = c0 * aprev(i, j, k) + c1 * (aprev(i-1, j-1, k-1) + aprev(i, j-1, k-1) + aprev(i+1, j-1, k-1) + aprev(i-1, j, k-1) + aprev(i, j, k-1) + aprev(i+1, j, k-1) + aprev(i-1, j+1, k-1) + aprev(i, j+1, k-1) + aprev(i+1, j+1, k-1) + aprev(i-1, j-1, k) + aprev(i, j-1, k) + aprev(i+1, j-1, k) + aprev(i-1, j, k) + aprev(i+1, j, k) + aprev(i-1, j+1, k) + aprev(i, j+1, k) + aprev(i+1, j+1, k) + aprev(i-1, j-1, k+1) + aprev(i, j-1, k+1) + aprev(i+1, j-1, k+1) + aprev(i-1, j, k+1) + aprev(i, j, k+1) + aprev(i+1, j, k+1) + aprev(i-1, j+1, k+1) + aprev(i, j+1, k+1) + aprev(i+1, j+1, k+1))
      enddo
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));
    // The hand-tiled variant: unit-step tile loops with min() upper bounds —
    // simple for a human, pathological for dependence analysis (§6.5).
    out.push(entry(
        Suite::Challenge,
        "heat27t",
        20,
        true,
        r#"
procedure heat27t(nx, ny, nz, anext, aprev, c0, c1)
  integer :: nx
  integer :: ny
  integer :: nz
  real, dimension(0:nx, 0:ny, 0:nz) :: anext
  real, dimension(0:nx, 0:ny, 0:nz) :: aprev
  real :: c0
  real :: c1
  real :: s
  integer :: i
  integer :: j
  integer :: k
  integer :: kk
  integer :: jj
  do kk = 1, nz-1, 4
    do jj = 1, ny-1, 4
      do k = kk, min(nz-1, kk+3)
        do j = jj, min(ny-1, jj+3)
          do i = 1, nx-1
            s = c1 * (aprev(i-1, j, k) + aprev(i+1, j, k) + aprev(i, j-1, k) + aprev(i, j+1, k) + aprev(i, j, k-1) + aprev(i, j, k+1))
            anext(i, j, k) = c0 * aprev(i, j, k) + s + c1 * (aprev(i-1, j-1, k) + aprev(i+1, j+1, k) + aprev(i-1, j+1, k) + aprev(i+1, j-1, k))
          enddo
        enddo
      enddo
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));
    out.push(entry(
        Suite::Challenge,
        "heat27u",
        20,
        true,
        r#"
procedure heat27u(nx, ny, nz, anext, aprev, c0, c1)
  integer :: nx
  integer :: ny
  integer :: nz
  real, dimension(0:nx, 0:ny, 0:nz) :: anext
  real, dimension(0:nx, 0:ny, 0:nz) :: aprev
  real :: c0
  real :: c1
  real :: t0
  real :: t1
  real :: t2
  integer :: i
  integer :: j
  integer :: k
  do k = 1, nz-1
    do j = 1, ny-1
      do i = 1, nx-1
        t0 = aprev(i-1, j, k) + aprev(i+1, j, k)
        t1 = aprev(i, j-1, k) + aprev(i, j+1, k)
        t2 = aprev(i, j, k-1) + aprev(i, j, k+1)
        anext(i, j, k) = c0 * aprev(i, j, k) + c1 * (t0 + t1 + t2)
      enddo
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));

    // ---- Strided challenge kernels: step-N iteration domains (§6.5). -----
    // A half-resolution 1D sweep: only every other point is updated, so the
    // lifted summary must quantify over the strided domain `1 + 2k`.
    out.push(entry(
        Suite::Challenge,
        "heat1s2",
        24,
        true,
        r#"
procedure heat1s2(n, a, b, c0)
  integer :: n
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  real :: c0
  integer :: i
  do i = 1, n-1, 2
    a(i) = c0 * b(i) + b(i-1) + b(i+1)
  enddo
end procedure
"#
        .to_string(),
    ));
    // A 2D plane sweep strided in the row dimension (red-black-style half
    // sweep): dense columns, step-2 rows.
    out.push(entry(
        Suite::Challenge,
        "jac2s2",
        16,
        true,
        r#"
procedure jac2s2(n, m, a, b)
  integer :: n
  integer :: m
  real, dimension(0:n, 0:m) :: a
  real, dimension(0:n, 0:m) :: b
  integer :: i
  integer :: j
  do j = 1, m-1, 2
    do i = 1, n-1
      a(i, j) = 0.25 * (b(i-1, j) + b(i+1, j) + b(i, j-1) + b(i, j+1))
    enddo
  enddo
end procedure
"#
        .to_string(),
    ));
    // A whitespace/formatting variant of jac2s2 (same identifiers, different
    // indentation, spacing, and blank lines): formatting never reaches the
    // lowered IR, so it must fingerprint-collide with jac2s2 and exercise
    // cache dedup on the strided path.
    out.push(entry(
        Suite::Challenge,
        "jac2s2_ws",
        16,
        true,
        r#"

procedure jac2s2_ws( n, m, a, b )
    integer ::    n
    integer :: m
    real, dimension( 0 : n, 0 : m ) :: a
    real, dimension(0:n, 0:m) :: b
    integer :: i
    integer :: j

    do j = 1,  m - 1,  2
          do i = 1, n-1
      a(i, j) = 0.25 * ( b(i-1, j) + b(i+1, j) + b(i, j-1) + b(i, j+1) )
          enddo
    enddo

end procedure
"#
        .to_string(),
    ));

    out
}

/// The kernels of one suite.
pub fn suite_kernels(suite: Suite) -> Vec<CorpusKernel> {
    all_kernels()
        .into_iter()
        .filter(|k| k.suite == suite)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stng_ir::parser::parse_program;

    #[test]
    fn every_corpus_kernel_parses() {
        for kernel in all_kernels() {
            assert!(
                parse_program(&kernel.source).is_ok(),
                "kernel {} failed to parse",
                kernel.name
            );
        }
    }

    #[test]
    fn corpus_covers_every_suite() {
        for suite in Suite::all() {
            assert!(
                !suite_kernels(suite).is_empty(),
                "suite {} has no kernels",
                suite.name()
            );
        }
    }

    #[test]
    fn corpus_contains_negative_cases() {
        let kernels = all_kernels();
        assert!(kernels.iter().any(|k| !k.is_stencil));
        assert!(kernels.iter().any(|k| k.name == "akl_rev"));
        assert!(kernels.iter().any(|k| k.name == "akl_bc"));
    }

    #[test]
    fn alpha_variants_fingerprint_collide_with_their_originals() {
        let kernels = all_kernels();
        let fingerprint = |name: &str| {
            let k = kernels
                .iter()
                .find(|k| k.name == name)
                .unwrap_or_else(|| panic!("corpus kernel {name}"));
            stng_ir::canon::canonicalize(&k.kernel().expect("kernel lowers")).fingerprint
        };
        assert_eq!(fingerprint("heat0"), fingerprint("heat0_renamed"));
        assert_eq!(fingerprint("jac2s2"), fingerprint("jac2s2_ws"));
        // The collisions are not vacuous: distinct kernels differ.
        assert_ne!(fingerprint("heat0"), fingerprint("jac2s2"));
        assert_ne!(fingerprint("heat0"), fingerprint("heat27"));
    }
}
