//! Layer 2 — the unified differential-oracle registry.
//!
//! Every subsystem with a fast/slow pair is registered here as a
//! [`DiffOracle`] the harness drives: the three oracles that previously
//! lived only as scattered release-mode tests (compiled checking, compiled
//! proving, the adaptive screen), plus two new members — canon/fingerprint
//! and disk-cache rehydration. The release tests remain the tier-1 /
//! CI-release depth; the registry re-drives the same properties with
//! counted (rather than panicking) verdicts so one `stng-verify` run
//! reports every divergence across every oracle.
//!
//! Adding a new differential pair = implementing [`DiffOracle`] and
//! appending it to [`registry`]; see `docs/verification.md`.

use crate::layer3::SplitMix64;
use crate::report::CheckReport;
use std::sync::Arc;
use stng::{KernelOutcome, LiftCache, Stng};
use stng_intern::guard::Budget;
use stng_ir::canon::{canonicalize, rename_kernel};
use stng_ir::interp::{run_kernel, ArrayData, State};
use stng_ir::ir::{CmpOp, IrExpr, IrStmt, Kernel};
use stng_ir::lower::kernel_from_source;
use stng_ir::value::{ModInt, MOD_FIELD};
use stng_pred::lang::{Invariant, OutEq, Postcondition, QuantBound, QuantClause};
use stng_pred::vcgen::{analyze_loop_nest, generate_vcs, Vc};
use stng_pred::{fixtures, LoopNest};
use stng_service::cache::PipelineCache;
use stng_solve::bounded::{BoundedChecker, CheckSession};
use stng_solve::{ProverSession, SmtLite, Verdict};
use stng_sym::exec::choose_small_bounds;

/// How far an oracle sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// PR gate: a bounded prefix of the corpus plus the special cases.
    Quick,
    /// Nightly/chaos: the whole corpus.
    Deep,
}

/// One registered fast/slow differential pair.
pub trait DiffOracle {
    fn name(&self) -> &'static str;
    fn run(&self, tier: Tier) -> CheckReport;
}

/// Every registered oracle, in run order.
pub fn registry() -> Vec<Box<dyn DiffOracle>> {
    vec![
        Box::new(CompiledChecking),
        Box::new(CompiledProving),
        Box::new(AdaptiveScreen),
        Box::new(CanonFingerprint),
        Box::new(CacheRehydration),
    ]
}

/// Corpus kernels that lower and analyze, bounded by tier.
fn analyzable_corpus(tier: Tier) -> Vec<(String, Kernel, LoopNest)> {
    let mut out = Vec::new();
    for corpus_kernel in stng_corpus::all_kernels() {
        let Ok(kernel) = kernel_from_source(&corpus_kernel.source, 0) else {
            continue;
        };
        let Ok(nest) = analyze_loop_nest(&kernel) else {
            continue;
        };
        out.push((corpus_kernel.name.clone(), kernel, nest));
        if tier == Tier::Quick && out.len() >= 10 {
            break;
        }
    }
    out
}

/// The shared synthetic postcondition family (`out[v⃗] = f(out[v⃗])` with an
/// index shift to force evaluation errors and a bump to force violations) —
/// the same family the release differential tests use.
fn synthetic_post(kernel: &Kernel, shift: i64, bump: bool) -> Postcondition {
    let mut clauses = Vec::new();
    for array in kernel.output_arrays() {
        let Some(dims) = kernel.array_dims(&array) else {
            continue;
        };
        let vars: Vec<String> = (0..dims.len()).map(|k| format!("dv{k}")).collect();
        let bounds = dims
            .iter()
            .zip(&vars)
            .map(|((lo, hi), v)| QuantBound::inclusive(v.clone(), lo.clone(), hi.clone()))
            .collect();
        let indices: Vec<IrExpr> = vars.iter().map(|v| IrExpr::var(v.clone())).collect();
        let read_indices: Vec<IrExpr> = if shift == 0 {
            indices.clone()
        } else {
            indices
                .iter()
                .map(|ix| IrExpr::add(ix.clone(), IrExpr::Int(shift)))
                .collect()
        };
        let mut rhs = IrExpr::Load {
            array: array.clone(),
            indices: read_indices,
        };
        if bump {
            rhs = IrExpr::add(rhs, IrExpr::Real(1.0));
        }
        clauses.push(QuantClause {
            bounds,
            eq: OutEq {
                array,
                indices,
                rhs,
            },
        });
    }
    Postcondition { clauses }
}

fn empty_invariants(nest: &LoopNest) -> Vec<Invariant> {
    nest.levels.iter().map(|_| Invariant::empty()).collect()
}

fn test_checker() -> BoundedChecker {
    BoundedChecker {
        grid_sizes: vec![3, 4],
        trials_per_size: 1,
        ..BoundedChecker::default()
    }
}

/// Four VC families per kernel: trivial / wrong / erroring / unbound-hyp.
fn vc_families(kernel: &Kernel, nest: &LoopNest) -> Vec<(&'static str, Vec<Vc>)> {
    let invariants = empty_invariants(nest);
    let mut families = vec![
        (
            "trivial",
            generate_vcs(
                nest,
                &kernel.assumptions,
                &invariants,
                &synthetic_post(kernel, 0, false),
            ),
        ),
        (
            "wrong",
            generate_vcs(
                nest,
                &kernel.assumptions,
                &invariants,
                &synthetic_post(kernel, 0, true),
            ),
        ),
        (
            "erroring",
            generate_vcs(
                nest,
                &kernel.assumptions,
                &invariants,
                &synthetic_post(kernel, 900, false),
            ),
        ),
    ];
    let mut unbound = generate_vcs(
        nest,
        &kernel.assumptions,
        &invariants,
        &synthetic_post(kernel, 0, false),
    );
    for vc in &mut unbound {
        vc.hypotheses.push(stng_pred::Pred::Bool(IrExpr::cmp(
            CmpOp::Le,
            IrExpr::var("never_bound_registry_var"),
            IrExpr::Int(0),
        )));
    }
    families.push(("unbound-hyp", unbound));
    families
}

/// Compiled VC checking vs the tree interpreter on every captured state.
struct CompiledChecking;

impl DiffOracle for CompiledChecking {
    fn name(&self) -> &'static str {
        "diff.compiled-checking"
    }

    fn run(&self, tier: Tier) -> CheckReport {
        use stng_pred::compile::CompiledVcSet;
        use stng_pred::eval::check_vc_on_state;
        let mut check = CheckReport::new(self.name());
        let mut kernels = 0u64;
        let mut outcomes = [0u64; 4];
        for (name, kernel, nest) in analyzable_corpus(tier) {
            let session = CheckSession::new(test_checker(), kernel.clone());
            if session.captured_units().iter().any(|u| u.is_err()) {
                continue;
            }
            kernels += 1;
            for (family, vcs) in vc_families(&kernel, &nest) {
                let compiled = match CompiledVcSet::compile(&vcs, session.map()) {
                    Ok(c) => c,
                    Err(e) => {
                        check.fail(format!("{name}/{family}: VCs must stay compilable: {e}"));
                        continue;
                    }
                };
                let mut sc = compiled.scratch::<ModInt>();
                for unit in session.captured_units() {
                    let unit = unit.as_ref().expect("checked above");
                    for (origin, state) in &unit.states {
                        let oracle_state = state.to_state();
                        for (k, vc) in vcs.iter().enumerate() {
                            check.cases += 1;
                            let slow = check_vc_on_state(vc, &oracle_state);
                            let fast = compiled.check(k, state, &mut sc);
                            match (slow, fast) {
                                (Ok(a), Ok(b)) if a == b => {
                                    outcomes[a as usize] += 1;
                                }
                                (Err(_), Err(_)) => outcomes[3] += 1,
                                (a, b) => check.fail(format!(
                                    "{name}/{family}: VC '{}' at {origin}: \
                                     tree {a:?} vs compiled {b:?}",
                                    vc.name
                                )),
                            }
                        }
                    }
                }
            }
        }
        check.count("kernels", kernels);
        check.count("vacuous", outcomes[0]);
        check.count("holds", outcomes[1]);
        check.count("violated", outcomes[2]);
        check.count("errors", outcomes[3]);
        if kernels == 0 {
            check.fail("no corpus kernel participated".to_string());
        }
        check
    }
}

/// Legacy / compiled / memoized prover verdict agreement, plus warm-memo
/// replay and budget-classification agreement on the running example.
struct CompiledProving;

impl DiffOracle for CompiledProving {
    fn name(&self) -> &'static str {
        "diff.compiled-proving"
    }

    fn run(&self, tier: Tier) -> CheckReport {
        let mut check = CheckReport::new(self.name());
        let prover = SmtLite {
            max_split_depth: 6,
            max_attempts: 4000,
        };
        let mut valid = 0u64;
        let mut unknown = 0u64;
        let mut kernels = 0u64;
        for (name, kernel, nest) in analyzable_corpus(tier) {
            kernels += 1;
            let invariants = empty_invariants(&nest);
            for (family, shift, bump) in [
                ("trivial", 0, false),
                ("wrong", 0, true),
                ("shifted", 9, false),
            ] {
                let vcs = generate_vcs(
                    &nest,
                    &kernel.assumptions,
                    &invariants,
                    &synthetic_post(&kernel, shift, bump),
                );
                check.cases += 1;
                let (legacy, la) = prover.verify_all_legacy(&vcs, &Budget::unlimited());
                let (compiled, ca) = prover.verify_all_governed(&vcs, &Budget::unlimited());
                if compiled != legacy || ca != la {
                    check.fail(format!(
                        "{name}/{family}: compiled ({compiled:?}, {ca}) vs \
                         legacy ({legacy:?}, {la})"
                    ));
                    continue;
                }
                let session = ProverSession::new();
                let (memoized, ma) =
                    prover.verify_all_session(&vcs, &Budget::unlimited(), &session);
                if memoized != legacy || ma > ca {
                    check.fail(format!(
                        "{name}/{family}: memoized ({memoized:?}, {ma}) vs legacy"
                    ));
                    continue;
                }
                let zero = Budget::limited(None, Some(0), None);
                let (warm, wa) = prover.verify_all_session(&vcs, &zero, &session);
                if warm != legacy || wa != 0 || zero.exhausted().is_some() {
                    check.fail(format!(
                        "{name}/{family}: warm replay ({warm:?}, {wa} attempts, \
                         exhausted {:?})",
                        zero.exhausted()
                    ));
                    continue;
                }
                match legacy {
                    Verdict::Valid => valid += 1,
                    Verdict::Unknown(_) => unknown += 1,
                }
            }
        }
        // Budget-interruption classification on the deepest real proof.
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).expect("fixture lowers");
        let nest = analyze_loop_nest(&kernel).expect("fixture analyzes");
        let vcs = generate_vcs(
            &nest,
            &kernel.assumptions,
            &fixtures::running_example_invariants(),
            &fixtures::running_example_post(),
        );
        let mut tripped = 0u64;
        let mut clean = 0u64;
        for attempts in [1u64, 2, 8, 32, 1 << 20] {
            check.cases += 1;
            let lb = Budget::limited(None, Some(attempts), None);
            let (lv, la) = prover.verify_all_legacy(&vcs, &lb);
            let cb = Budget::limited(None, Some(attempts), None);
            let (cv, ca) = prover.verify_all_governed(&vcs, &cb);
            if lv != cv || la != ca || lb.exhausted() != cb.exhausted() {
                check.fail(format!(
                    "governed@{attempts}: legacy ({lv:?}, {la}, {:?}) vs \
                     compiled ({cv:?}, {ca}, {:?})",
                    lb.exhausted(),
                    cb.exhausted()
                ));
            } else if lb.exhausted().is_some() {
                tripped += 1;
            } else {
                clean += 1;
            }
        }
        if tripped == 0 || clean == 0 {
            check.fail(format!(
                "governed sweep vacuous: {tripped} tripped, {clean} clean"
            ));
        }
        check.count("kernels", kernels);
        check.count("valid", valid);
        check.count("unknown", unknown);
        check.count("governed-tripped", tripped);
        check.count("governed-clean", clean);
        check
    }
}

/// The staged, kill-ordered, batched screen vs the exhaustive reference
/// scan — verdict (presence/absence/error) agreement.
struct AdaptiveScreen;

impl DiffOracle for AdaptiveScreen {
    fn name(&self) -> &'static str {
        "diff.adaptive-screen"
    }

    fn run(&self, tier: Tier) -> CheckReport {
        let mut check = CheckReport::new(self.name());
        let mut verdicts = [0u64; 3];
        let mut kernels = 0u64;
        for (name, kernel, nest) in analyzable_corpus(tier) {
            kernels += 1;
            let session = CheckSession::new(
                BoundedChecker {
                    grid_sizes: vec![3, 4],
                    trials_per_size: 2,
                    ..BoundedChecker::default()
                },
                kernel.clone(),
            );
            let families = vc_families(&kernel, &nest);
            // Two rounds: the second runs under kill-count-warmed ordering.
            for round in 0..2 {
                for (family, vcs) in &families {
                    check.cases += 1;
                    let adaptive = session.find_counterexample(vcs);
                    let exhaustive = session.find_counterexample_exhaustive(vcs);
                    match (&adaptive, &exhaustive) {
                        (Ok(None), Ok(None)) => verdicts[0] += 1,
                        (Ok(Some(_)), Ok(Some(_))) => verdicts[1] += 1,
                        (Err(_), Err(_)) => verdicts[2] += 1,
                        _ => check.fail(format!(
                            "{name}/{family}/round{round}: adaptive {adaptive:?} \
                             vs exhaustive {exhaustive:?}"
                        )),
                    }
                }
            }
        }
        check.count("kernels", kernels);
        check.count("survived", verdicts[0]);
        check.count("killed", verdicts[1]);
        check.count("errored", verdicts[2]);
        if verdicts[0] == 0 || verdicts[1] == 0 {
            check.fail("sweep vacuous: a verdict class never occurred".to_string());
        }
        check
    }
}

/// Canon / fingerprint: alpha-renames must preserve the fingerprint;
/// structured mutations (coefficient bump, loop restride, extra statement)
/// must change it.
struct CanonFingerprint;

/// Mutates the first real constant in the body; returns success.
fn bump_first_real(stmts: &mut [IrStmt]) -> bool {
    fn in_expr(e: &mut IrExpr) -> bool {
        match e {
            IrExpr::Real(v) => {
                *v += 1.0;
                true
            }
            IrExpr::Int(_) | IrExpr::Var(_) => false,
            IrExpr::Load { indices, .. } => indices.iter_mut().any(in_expr),
            IrExpr::Bin { lhs, rhs, .. } | IrExpr::Cmp { lhs, rhs, .. } => {
                in_expr(lhs) || in_expr(rhs)
            }
            IrExpr::Call { args, .. } => args.iter_mut().any(in_expr),
            IrExpr::And(a, b) | IrExpr::Or(a, b) => in_expr(a) || in_expr(b),
            IrExpr::Not(e) => in_expr(e),
        }
    }
    stmts.iter_mut().any(|stmt| match stmt {
        IrStmt::AssignScalar { value, .. } => in_expr(value),
        IrStmt::Store { indices, value, .. } => indices.iter_mut().any(in_expr) || in_expr(value),
        IrStmt::Loop { body, .. } => bump_first_real(body),
        IrStmt::If {
            cond,
            then_body,
            else_body,
        } => in_expr(cond) || bump_first_real(then_body) || bump_first_real(else_body),
    })
}

/// Doubles the first loop's step; returns success.
fn restride_first_loop(stmts: &mut [IrStmt]) -> bool {
    stmts.iter_mut().any(|stmt| match stmt {
        IrStmt::Loop { domain, .. } => {
            domain.step *= 2;
            true
        }
        IrStmt::If {
            then_body,
            else_body,
            ..
        } => restride_first_loop(then_body) || restride_first_loop(else_body),
        _ => false,
    })
}

impl DiffOracle for CanonFingerprint {
    fn name(&self) -> &'static str {
        "diff.canon-fingerprint"
    }

    fn run(&self, tier: Tier) -> CheckReport {
        let mut check = CheckReport::new(self.name());
        let mut rng = SplitMix64::new(0x00c0_ffee_0000_0001);
        let mut renames = 0u64;
        let mut mutations = 0u64;
        for (name, kernel, _) in analyzable_corpus(tier) {
            let base = canonicalize(&kernel);
            // Alpha-renames collide.
            for trial in 0..2 {
                let map: std::collections::HashMap<String, String> = kernel
                    .params
                    .iter()
                    .chain(&kernel.locals)
                    .enumerate()
                    .map(|(k, p)| (p.name.clone(), format!("vr{k}_{:x}", rng.next_u64())))
                    .collect();
                check.cases += 1;
                renames += 1;
                let variant = canonicalize(&rename_kernel(&kernel, &map));
                if variant.fingerprint != base.fingerprint || variant.text != base.text {
                    check.fail(format!(
                        "{name}/rename{trial}: alpha-rename changed the fingerprint"
                    ));
                }
            }
            // Structured mutations separate.
            let mut bumped = kernel.clone();
            if bump_first_real(&mut bumped.body) {
                check.cases += 1;
                mutations += 1;
                if canonicalize(&bumped).fingerprint == base.fingerprint {
                    check.fail(format!(
                        "{name}: coefficient bump did not change the fingerprint"
                    ));
                }
            }
            let mut restrided = kernel.clone();
            if restride_first_loop(&mut restrided.body) {
                check.cases += 1;
                mutations += 1;
                if canonicalize(&restrided).fingerprint == base.fingerprint {
                    check.fail(format!("{name}: restride did not change the fingerprint"));
                }
            }
        }
        check.count("renames", renames);
        check.count("mutations", mutations);
        if renames == 0 || mutations == 0 {
            check.fail("sweep vacuous: no renames or no mutations ran".to_string());
        }
        check
    }
}

/// Disk-cache rehydration round-trip: lift a kernel through a persistent
/// cache, then lift its alpha-renamed twin through a *fresh* cache instance
/// over the same directory (forcing disk rehydration into the renamed
/// vocabulary), and interpreter-validate the rehydrated summary against the
/// renamed kernel on random inputs.
struct CacheRehydration;

/// Arrays read (via `Load`) anywhere in an expression.
fn loads_of(e: &IrExpr, out: &mut std::collections::BTreeSet<String>) {
    match e {
        IrExpr::Load { array, indices } => {
            out.insert(array.clone());
            for ix in indices {
                loads_of(ix, out);
            }
        }
        IrExpr::Int(_) | IrExpr::Real(_) | IrExpr::Var(_) => {}
        IrExpr::Bin { lhs, rhs, .. } | IrExpr::Cmp { lhs, rhs, .. } => {
            loads_of(lhs, out);
            loads_of(rhs, out);
        }
        IrExpr::Call { args, .. } => {
            for a in args {
                loads_of(a, out);
            }
        }
        IrExpr::And(a, b) | IrExpr::Or(a, b) => {
            loads_of(a, out);
            loads_of(b, out);
        }
        IrExpr::Not(e) => loads_of(e, out),
    }
}

/// Runs `kernel` on seeded random inputs and checks every postcondition
/// clause whose right-hand side reads only arrays the kernel never stores
/// to (in-place clauses would compare against post-state and are skipped —
/// the skip count is reported). Returns (clauses validated, clauses
/// skipped) or an error description.
pub(crate) fn validate_summary(
    kernel: &Kernel,
    post: &Postcondition,
    seed: u64,
    sizes: &[i64],
) -> Result<(u64, u64), String> {
    let outputs: std::collections::BTreeSet<String> = kernel.output_arrays().into_iter().collect();
    let mut validated = 0u64;
    let mut skipped = 0u64;
    let mut rng = SplitMix64::new(seed);
    for &size in sizes {
        let bounds = choose_small_bounds(kernel, size);
        let mut state: State<ModInt> = State::new();
        for (name, value) in &bounds {
            state.set_int(name.clone(), *value);
        }
        for name in kernel.real_params() {
            state.set_real(
                name.clone(),
                ModInt::new((rng.next_u64() % MOD_FIELD as u64) as i64),
            );
        }
        for param in &kernel.params {
            if let stng_ir::ir::ParamKind::Array { dims } = &param.kind {
                let mut concrete = Vec::new();
                for (lo, hi) in dims {
                    let lo = stng_ir::interp::eval_int_expr(lo, &state)
                        .map_err(|e| format!("bound eval: {e}"))?;
                    let hi = stng_ir::interp::eval_int_expr(hi, &state)
                        .map_err(|e| format!("bound eval: {e}"))?;
                    concrete.push((lo, hi));
                }
                let array = ArrayData::from_fn(concrete, |_| {
                    ModInt::new((rng.next_u64() % MOD_FIELD as u64) as i64)
                });
                state.set_array(param.name.clone(), array);
            }
        }
        run_kernel(kernel, &mut state).map_err(|e| format!("kernel run (size {size}): {e}"))?;
        for clause in &post.clauses {
            let mut reads = std::collections::BTreeSet::new();
            loads_of(&clause.eq.rhs, &mut reads);
            if reads.intersection(&outputs).next().is_some() {
                skipped += 1;
                continue;
            }
            match stng_pred::eval::eval_quant_clause(clause, &mut state) {
                Ok(true) => validated += 1,
                Ok(false) => {
                    return Err(format!(
                        "clause over '{}' does not hold on the interpreter (size {size})",
                        clause.eq.array
                    ))
                }
                Err(e) => return Err(format!("clause eval (size {size}): {e}")),
            }
        }
    }
    Ok((validated, skipped))
}

impl DiffOracle for CacheRehydration {
    fn name(&self) -> &'static str {
        "diff.cache-rehydration"
    }

    fn run(&self, _tier: Tier) -> CheckReport {
        let mut check = CheckReport::new(self.name());
        let pairs = [("heat0", "heat0_renamed"), ("jac2s2", "jac2s2_ws")];
        let corpus = stng_corpus::all_kernels();
        let source_of = |name: &str| {
            corpus
                .iter()
                .find(|k| k.name == name)
                .map(|k| k.source.clone())
        };
        let dir =
            std::env::temp_dir().join(format!("stng-verify-rehydrate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut validated_total = 0u64;
        let mut skipped_total = 0u64;
        for (original, renamed) in pairs {
            check.cases += 1;
            let (Some(src_a), Some(src_b)) = (source_of(original), source_of(renamed)) else {
                check.fail(format!("corpus pair {original}/{renamed} missing"));
                continue;
            };
            // Record through a persistent cache.
            let warm = match PipelineCache::persistent(64, &dir) {
                Ok(c) => Arc::new(c),
                Err(e) => {
                    check.fail(format!("cache dir unusable: {e}"));
                    continue;
                }
            };
            let report_a = match Stng::new()
                .with_cache(warm.clone() as Arc<dyn LiftCache>)
                .lift_source(&src_a)
            {
                Ok(r) => r,
                Err(e) => {
                    check.fail(format!("{original}: parse error: {e}"));
                    continue;
                }
            };
            if !report_a.kernels.iter().any(|k| k.outcome.is_translated()) {
                check.fail(format!("{original}: expected a translated kernel"));
                continue;
            }
            // A *fresh* cache instance over the same directory: the memory
            // tier is empty, so the hit must rehydrate from disk into the
            // renamed kernel's vocabulary.
            let cold = match PipelineCache::persistent(64, &dir) {
                Ok(c) => Arc::new(c),
                Err(e) => {
                    check.fail(format!("cache dir unusable: {e}"));
                    continue;
                }
            };
            let report_b = match Stng::new()
                .with_cache(cold.clone() as Arc<dyn LiftCache>)
                .lift_source(&src_b)
            {
                Ok(r) => r,
                Err(e) => {
                    check.fail(format!("{renamed}: parse error: {e}"));
                    continue;
                }
            };
            let Some(hit) = report_b.kernels.iter().find(|k| k.outcome.is_translated()) else {
                check.fail(format!("{renamed}: expected a translated kernel"));
                continue;
            };
            if !hit.cached || cold.stats().disk_hits == 0 {
                check.fail(format!(
                    "{renamed}: expected a disk rehydration hit (cached={}, disk_hits={})",
                    hit.cached,
                    cold.stats().disk_hits
                ));
                continue;
            }
            let KernelOutcome::Translated { post, .. } = &hit.outcome else {
                unreachable!("checked translated above");
            };
            let Some(kernel_b) = &hit.kernel else {
                check.fail(format!("{renamed}: rehydrated report lost its kernel"));
                continue;
            };
            match validate_summary(kernel_b, post, 0x5EED_0001, &[3, 4]) {
                Ok((validated, skipped)) => {
                    validated_total += validated;
                    skipped_total += skipped;
                    if validated == 0 {
                        check.fail(format!(
                            "{renamed}: rehydrated summary had no validatable clause"
                        ));
                    }
                }
                Err(e) => check.fail(format!(
                    "{renamed}: rehydrated summary failed interpreter validation: {e}"
                )),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        check.count("clauses-validated", validated_total);
        check.count("clauses-skipped-inplace", skipped_total);
        check
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_summary_validates_on_the_interpreter() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let post = fixtures::running_example_post();
        let (validated, _skipped) =
            validate_summary(&kernel, &post, 42, &[3, 4]).expect("fixture post validates");
        assert!(validated > 0);
    }

    #[test]
    fn canon_fingerprint_oracle_is_green_on_quick() {
        let report = CanonFingerprint.run(Tier::Quick);
        assert_eq!(report.failures, 0, "{:?}", report.notes);
        assert!(report.cases > 0);
    }
}
