//! Layer 1a — exhaustive model checking of the linear-arithmetic engine.
//!
//! The domain named by the acceptance criterion (≤3 variables, coefficients
//! in [-3,3], ≤6 constraints) contains ~10^16 raw systems, so exhausting it
//! literally is impossible. Instead the checker partitions it into
//! **strata** — (variable count, coefficient range, system size) boxes that
//! cover every corner of the domain: full coefficient range at low variable
//! counts, full variable count at small coefficients, maximum system size at
//! 1–2 variables. *Each stratum is enumerated completely* (every subset of
//! its row universe in the size range), and the per-stratum enumeration
//! counts are reported in the JSON output, so there is no silent truncation:
//! the report states exactly which systems were checked.
//!
//! Per system, three properties:
//!
//! * **engine agreement** — the tree-walking Fourier–Motzkin oracle
//!   (`lin::model::tree_infeasible`) and the compiled pipeline
//!   (memo → learned cores → dense elimination) must return the same
//!   verdict;
//! * **integer soundness** — if a brute-force scan of an integer box finds
//!   a satisfying point, the engines must *not* report infeasible.
//!   (FM decides rational feasibility, so "infeasible with no box witness"
//!   is fine; "infeasible with a witness" is a soundness bug.)
//! * **gcd tightening** — per row, the tightened form must agree with the
//!   original on every integer point of the box (tightening is an
//!   integer-equivalence transformation).
//!
//! After the sweep, every learned core the run accumulated is re-verified
//! UNSAT by the tree oracle (core subsumption short-circuits production
//! queries, so a bogus core would be a silent soundness hole).

use crate::report::CheckReport;
use stng_ir::ir::Affine;
use stng_solve::lin::model;

/// One exhaustively enumerated slice of the constraint-system domain.
struct Stratum {
    name: &'static str,
    nvars: usize,
    coeff_bound: i64,
    const_bound: i64,
    /// System sizes (number of distinct rows) enumerated, inclusive.
    min_rows: usize,
    max_rows: usize,
    /// Integer box half-width scanned by the brute-force oracle.
    box_bound: i64,
}

const QUICK_STRATA: &[Stratum] = &[
    // Full coefficient range at one variable, up to 3 constraints.
    Stratum {
        name: "1var-c3-k3",
        nvars: 1,
        coeff_bound: 3,
        const_bound: 3,
        min_rows: 1,
        max_rows: 3,
        box_bound: 6,
    },
    // Two variables at mid coefficients, up to 3 constraints.
    Stratum {
        name: "2var-c2-k3",
        nvars: 2,
        coeff_bound: 2,
        const_bound: 2,
        min_rows: 1,
        max_rows: 3,
        box_bound: 4,
    },
    // Full variable count at unit coefficients, up to 3 constraints.
    Stratum {
        name: "3var-c1-k3",
        nvars: 3,
        coeff_bound: 1,
        const_bound: 1,
        min_rows: 1,
        max_rows: 3,
        box_bound: 2,
    },
    // Maximum system size (6 constraints) at one variable.
    Stratum {
        name: "1var-c2-k6",
        nvars: 1,
        coeff_bound: 2,
        const_bound: 2,
        min_rows: 4,
        max_rows: 6,
        box_bound: 4,
    },
];

const DEEP_STRATA: &[Stratum] = &[
    // Full variable count *and* full coefficient range, pairs.
    Stratum {
        name: "3var-c3-k2",
        nvars: 3,
        coeff_bound: 3,
        const_bound: 3,
        min_rows: 1,
        max_rows: 2,
        box_bound: 3,
    },
    // Maximum system size at two variables.
    Stratum {
        name: "2var-c1-k6",
        nvars: 2,
        coeff_bound: 1,
        const_bound: 1,
        min_rows: 4,
        max_rows: 6,
        box_bound: 2,
    },
];

/// Variable names shared by every enumerated row (interned once).
const VARS: [&str; 3] = ["mv0", "mv1", "mv2"];

/// One enumerated row: the `Affine` plus a dense coefficient mirror for the
/// brute-force oracle and a satisfaction bitset over the stratum's box.
struct Row {
    affine: Affine,
    /// Bit `p` set ⇔ the row holds (`Σ ci·xi + c ≤ 0`) at box point `p`.
    sat: Vec<u64>,
}

/// Odometer over the integer box `[-b, b]^nvars`, yielding points in a
/// fixed deterministic order.
fn box_points(nvars: usize, b: i64) -> Vec<Vec<i64>> {
    let mut points = vec![vec![]];
    for _ in 0..nvars {
        let mut next = Vec::with_capacity(points.len() * (2 * b + 1) as usize);
        for p in &points {
            for v in -b..=b {
                let mut q = p.clone();
                q.push(v);
                next.push(q);
            }
        }
        points = next;
    }
    points
}

/// Enumerates the stratum's full row universe with precomputed oracle
/// bitsets.
fn rows_for(stratum: &Stratum, points: &[Vec<i64>]) -> Vec<Row> {
    let words = points.len().div_ceil(64);
    let mut rows = Vec::new();
    // Odometer over (coeffs, constant).
    let cb = stratum.coeff_bound;
    let kb = stratum.const_bound;
    let mut digits = vec![-cb; stratum.nvars];
    let mut constant = -kb;
    loop {
        let mut affine = Affine::constant(constant);
        for (k, &c) in digits.iter().enumerate() {
            if c != 0 {
                affine = affine.add(&Affine::var(VARS[k]).scale(c));
            }
        }
        let mut sat = vec![0u64; words];
        for (p, point) in points.iter().enumerate() {
            let value: i64 = digits.iter().zip(point).map(|(c, x)| c * x).sum::<i64>() + constant;
            if value <= 0 {
                sat[p / 64] |= 1 << (p % 64);
            }
        }
        rows.push(Row { affine, sat });

        // Advance the odometer.
        let mut k = 0;
        loop {
            if k == stratum.nvars {
                constant += 1;
                if constant > kb {
                    return rows;
                }
                break;
            }
            digits[k] += 1;
            if digits[k] <= cb {
                break;
            }
            digits[k] = -cb;
            k += 1;
        }
    }
}

/// Advances `idx` to the next lexicographic size-`k` combination of
/// `0..n`; returns `false` when exhausted.
fn next_combination(idx: &mut [usize], n: usize) -> bool {
    let k = idx.len();
    let mut j = k;
    while j > 0 {
        j -= 1;
        if idx[j] < n - k + j {
            idx[j] += 1;
            for l in j + 1..k {
                idx[l] = idx[l - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Checks every size-`k` combination of distinct rows for `k` in the
/// stratum's range. Returns (systems, infeasible, witnessed).
fn sweep_stratum(stratum: &Stratum, check: &mut CheckReport) -> (u64, u64, u64) {
    let points = box_points(stratum.nvars, stratum.box_bound);
    let rows = rows_for(stratum, &points);
    let words = points.len().div_ceil(64);
    let full_mask: Vec<u64> = (0..words)
        .map(|w| {
            let bits = points.len() - w * 64;
            if bits >= 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            }
        })
        .collect();

    let mut systems = 0u64;
    let mut infeasible = 0u64;
    let mut witnessed = 0u64;
    let mut affs: Vec<Affine> = Vec::with_capacity(stratum.max_rows);
    let mut meet = vec![0u64; words];

    // Size-k combinations of row indices, lexicographic.
    for k in stratum.min_rows..=stratum.max_rows {
        let n = rows.len();
        if k > n {
            continue;
        }
        let mut idx: Vec<usize> = (0..k).collect();
        loop {
            systems += 1;
            affs.clear();
            meet.copy_from_slice(&full_mask);
            for &i in &idx {
                affs.push(rows[i].affine.clone());
                for (m, s) in meet.iter_mut().zip(&rows[i].sat) {
                    *m &= s;
                }
            }
            let has_witness = meet.iter().any(|&w| w != 0);
            let tree = model::tree_infeasible(&affs);
            let compiled = model::compiled_infeasible(&affs);
            if tree != compiled {
                check.fail(format!(
                    "{}: engine disagreement (tree {tree}, compiled {compiled}) on {affs:?}",
                    stratum.name
                ));
            }
            if tree {
                infeasible += 1;
                if has_witness {
                    check.fail(format!(
                        "{}: UNSOUND — integer witness exists but FM says infeasible: {affs:?}",
                        stratum.name
                    ));
                }
            }
            if has_witness {
                witnessed += 1;
            }
            if !next_combination(&mut idx, n) {
                break;
            }
        }
    }
    (systems, infeasible, witnessed)
}

/// Per-row gcd-tightening equivalence over the stratum's integer box.
fn sweep_tightening(stratum: &Stratum, check: &mut CheckReport) -> u64 {
    let points = box_points(stratum.nvars, stratum.box_bound);
    let rows = rows_for(stratum, &points);
    let mut checked = 0u64;
    for row in &rows {
        let tightened = model::tighten_row(row.affine.clone());
        for point in &points {
            let eval = |a: &Affine| -> i64 {
                VARS.iter()
                    .zip(point)
                    .map(|(v, x)| a.coeff(*v) * x)
                    .sum::<i64>()
                    + a.constant
            };
            checked += 1;
            if (eval(&row.affine) <= 0) != (eval(&tightened) <= 0) {
                check.fail(format!(
                    "{}: tightening changed integer satisfaction of {:?} at {point:?}",
                    stratum.name, row.affine
                ));
            }
        }
    }
    checked
}

/// Runs the FM model checker over the given tier's strata.
pub fn run(deep: bool) -> Vec<CheckReport> {
    let mut agreement = CheckReport::new("fm.exhaustive-strata");
    let mut tightening = CheckReport::new("fm.gcd-tightening");
    let mut cores = CheckReport::new("fm.learned-cores");

    let strata: Vec<&Stratum> = if deep {
        QUICK_STRATA.iter().chain(DEEP_STRATA).collect()
    } else {
        QUICK_STRATA.iter().collect()
    };

    for stratum in strata {
        let _span = stng_obs::span(&stng_obs::names::VERIFY_CHECK);
        let (systems, infeasible, witnessed) = sweep_stratum(stratum, &mut agreement);
        agreement.cases += systems;
        agreement.count(format!("{}.systems", stratum.name), systems);
        agreement.count(format!("{}.infeasible", stratum.name), infeasible);
        agreement.count(format!("{}.witnessed-feasible", stratum.name), witnessed);

        let row_points = sweep_tightening(stratum, &mut tightening);
        tightening.cases += row_points;
        tightening.count(format!("{}.row-points", stratum.name), row_points);

        // Every core learned during this stratum's compiled queries must be
        // UNSAT by the independent tree oracle. Verified per stratum because
        // the arenas are swept between strata to bound the verdict memo.
        let snapshot = model::learned_cores();
        for core in &snapshot {
            cores.cases += 1;
            if !model::tree_infeasible(core) {
                cores.fail(format!(
                    "{}: learned core is not UNSAT under the tree oracle: {core:?}",
                    stratum.name
                ));
            }
        }
        cores.count(format!("{}.cores", stratum.name), snapshot.len() as u64);

        // Bound the global FM verdict memo: enumeration would otherwise
        // leave millions of entries behind.
        stng_solve::retain_epoch(u64::MAX);
    }

    vec![agreement, tightening, cores]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny stratum exercised end to end in debug builds; the full quick
    /// strata run in release via `stng-verify --quick`.
    #[test]
    fn tiny_stratum_is_green_and_counts_match() {
        let stratum = Stratum {
            name: "test-1var-c1-k2",
            nvars: 1,
            coeff_bound: 1,
            const_bound: 1,
            min_rows: 1,
            max_rows: 2,
            box_bound: 3,
        };
        let mut check = CheckReport::new("test");
        let (systems, infeasible, witnessed) = sweep_stratum(&stratum, &mut check);
        assert_eq!(check.failures, 0, "{:?}", check.notes);
        // 9 rows (3 coeffs × 3 constants): C(9,1) + C(9,2) = 9 + 36 = 45.
        assert_eq!(systems, 45);
        assert!(infeasible > 0, "x ≤ -1 ∧ 1 ≤ x style systems must appear");
        assert!(witnessed > 0);
        let tightened = sweep_tightening(&stratum, &mut check);
        assert_eq!(check.failures, 0, "{:?}", check.notes);
        assert_eq!(tightened, 9 * 7, "9 rows × 7 box points");
    }

    #[test]
    fn known_infeasible_and_feasible_systems_agree() {
        // x ≤ -1 ∧ -x ≤ -1 (i.e. x ≥ 1): infeasible.
        let a = Affine::var("mv0").add(&Affine::constant(1));
        let b = Affine::var("mv0").scale(-1).add(&Affine::constant(1));
        assert!(model::tree_infeasible(&[a.clone(), b.clone()]));
        assert!(model::compiled_infeasible(&[a.clone(), b.clone()]));
        // x ≤ -1 alone: feasible.
        assert!(!model::tree_infeasible(std::slice::from_ref(&a)));
        assert!(!model::compiled_infeasible(&[a]));
    }
}
