//! `stng-verify`: the layered soundness-verification harness.
//!
//! One entry point ([`run`]) drives three independent evidence layers over
//! the lifting pipeline and renders one canonical JSON [`Report`]:
//!
//! * **Layer 1 — exhaustive model checking** ([`layer1_fm`],
//!   [`layer1_slots`]): small domains swept *completely* — stratified
//!   linear-system enumeration against a brute-force integer oracle, and an
//!   enumerated VC grammar through both checking engines.
//! * **Layer 2 — differential oracles** ([`layer2`]): every fast/slow pair
//!   in the codebase registered behind one [`layer2::DiffOracle`] trait and
//!   driven over the corpus.
//! * **Layer 3 — seeded kernel fuzzing** ([`layer3`]): generated loop
//!   nests through the full pipeline under metamorphic properties.
//!
//! Two tiers: `--quick` (the PR gate, bounded strata / corpus prefix /
//! small fuzz batch, wall-gated by `stng-bench`) and `--deep` (full strata,
//! whole corpus, ≥200 fuzzed kernels — the nightly and chaos tier).
//! `docs/verification.md` documents what each layer does and does not
//! establish.

pub mod layer1_fm;
pub mod layer1_slots;
pub mod layer2;
pub mod layer3;
pub mod report;

pub use report::{CheckReport, LayerReport, Report};

use stng_intern::Symbol;
use stng_obs::metrics::Lazy;
use stng_obs::names;

static VERIFY_CASES: Lazy = Lazy::counter("verify.cases");
static VERIFY_FAILURES: Lazy = Lazy::counter("verify.failures");

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Options {
    /// Deep tier: full strata, whole corpus, the ≥200-kernel fuzz batch.
    pub deep: bool,
    /// Seed for the Layer-3 fuzzer (and seeded sampling elsewhere).
    pub seed: u64,
    /// Kernels the fuzzer generates; `None` picks the tier default
    /// (quick: 48, deep: 224).
    pub fuzz_count: Option<usize>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            deep: false,
            seed: 0x57e9_c11a_0000_0001,
            fuzz_count: None,
        }
    }
}

impl Options {
    pub fn fuzz_count(&self) -> usize {
        self.fuzz_count.unwrap_or(if self.deep { 224 } else { 48 })
    }
}

fn layer_tier(opts: &Options) -> layer2::Tier {
    if opts.deep {
        layer2::Tier::Deep
    } else {
        layer2::Tier::Quick
    }
}

/// Runs all three layers and assembles the report. Deterministic for a
/// given `(deep, seed, fuzz_count)`: the rendered JSON is byte-identical
/// across runs (Layer 3 is re-run once to pin exactly that).
pub fn run(opts: &Options) -> Report {
    let mut layers = Vec::new();

    {
        let mut layer_span = stng_obs::span(&names::VERIFY_LAYER);
        layer_span.detail_sym(Symbol::intern("model-checking"));
        let mut checks = layer1_fm::run(opts.deep);
        checks.extend(layer1_slots::run(opts.deep));
        layers.push(LayerReport {
            name: "model-checking",
            checks,
        });
    }

    {
        let mut layer_span = stng_obs::span(&names::VERIFY_LAYER);
        layer_span.detail_sym(Symbol::intern("differential"));
        let tier = layer_tier(opts);
        let mut checks = Vec::new();
        for oracle in layer2::registry() {
            let mut check_span = stng_obs::span(&names::VERIFY_CHECK);
            check_span.detail_sym(Symbol::intern(oracle.name()));
            checks.push(oracle.run(tier));
        }
        layers.push(LayerReport {
            name: "differential",
            checks,
        });
    }

    {
        let mut layer_span = stng_obs::span(&names::VERIFY_LAYER);
        layer_span.detail_sym(Symbol::intern("fuzzing"));
        let mut checks = layer3::run_with(opts.seed, opts.fuzz_count());
        // The determinism guarantee is itself a property: replay the fuzz
        // batch and require identical counts, notes, everything.
        let replay = layer3::run_with(opts.seed, opts.fuzz_count());
        let mut determinism = CheckReport::new("fuzz.determinism");
        determinism.cases = 1;
        if checks != replay {
            determinism.fail(format!(
                "fuzz batch is not deterministic for seed {:#x}",
                opts.seed
            ));
        }
        checks.push(determinism);
        layers.push(LayerReport {
            name: "fuzzing",
            checks,
        });
    }

    let report = Report {
        tier: if opts.deep { "deep" } else { "quick" },
        seed: opts.seed,
        layers,
    };
    VERIFY_CASES.add(report.total_cases());
    VERIFY_FAILURES.add(report.total_failures());
    report
}
