//! The canonical JSON report `stng-verify` emits.
//!
//! The report is hand-rolled JSON (like `stng-bench`'s `BENCH_N.json` — no
//! serde in the workspace) and deliberately contains **no timing and no
//! machine-dependent fields**: two runs with the same tier and seed must
//! produce byte-identical reports, which is itself one of the properties CI
//! pins (the kernel fuzzer's determinism guarantee). Wall-clock numbers go
//! to stderr and to the obs metrics registry instead.

/// One check (a Layer-1 enumeration stratum group, a Layer-2 differential
/// oracle, or a Layer-3 fuzzer property sweep).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Stable check name (`fm.engine-agreement`, `diff.prover`, …).
    pub name: String,
    /// Cases driven — enumerated systems, states×VCs, kernels×properties.
    /// Every case is counted; a check must never silently truncate.
    pub cases: u64,
    /// Cases where the implementation disagreed with its oracle. Anything
    /// non-zero fails the whole run.
    pub failures: u64,
    /// Named sub-counts, in insertion order: per-stratum enumeration sizes,
    /// outcome-class tallies, skip counts (with the reason in the name).
    pub detail: Vec<(String, u64)>,
    /// Human-readable descriptions of the first few failures.
    pub notes: Vec<String>,
}

impl CheckReport {
    pub fn new(name: impl Into<String>) -> CheckReport {
        CheckReport {
            name: name.into(),
            ..CheckReport::default()
        }
    }

    /// Records one named count.
    pub fn count(&mut self, name: impl Into<String>, value: u64) {
        self.detail.push((name.into(), value));
    }

    /// Records a failure, keeping the first few descriptions.
    pub fn fail(&mut self, description: impl Into<String>) {
        self.failures += 1;
        if self.notes.len() < 8 {
            self.notes.push(description.into());
        }
    }
}

/// One of the three layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerReport {
    pub name: &'static str,
    pub checks: Vec<CheckReport>,
}

impl LayerReport {
    pub fn cases(&self) -> u64 {
        self.checks.iter().map(|c| c.cases).sum()
    }

    pub fn failures(&self) -> u64 {
        self.checks.iter().map(|c| c.failures).sum()
    }
}

/// The whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// `quick` or `deep`.
    pub tier: &'static str,
    /// Seed driving the Layer-3 fuzzer (and any seeded sampling elsewhere).
    pub seed: u64,
    pub layers: Vec<LayerReport>,
}

impl Report {
    pub fn passed(&self) -> bool {
        self.layers.iter().all(|l| l.failures() == 0)
    }

    pub fn total_cases(&self) -> u64 {
        self.layers.iter().map(|l| l.cases()).sum()
    }

    pub fn total_failures(&self) -> u64 {
        self.layers.iter().map(|l| l.failures()).sum()
    }

    /// Canonical JSON rendering: construction order, no timing, no paths.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"tier\": {},\n", json_str(self.tier)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"cases\": {},\n", self.total_cases()));
        out.push_str(&format!("  \"failures\": {},\n", self.total_failures()));
        out.push_str(&format!(
            "  \"passed\": {},\n",
            if self.passed() { "true" } else { "false" }
        ));
        out.push_str("  \"layers\": [\n");
        for (li, layer) in self.layers.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": {},\n", json_str(layer.name)));
            out.push_str(&format!("      \"cases\": {},\n", layer.cases()));
            out.push_str(&format!("      \"failures\": {},\n", layer.failures()));
            out.push_str("      \"checks\": [\n");
            for (ci, check) in layer.checks.iter().enumerate() {
                out.push_str("        {\n");
                out.push_str(&format!("          \"name\": {},\n", json_str(&check.name)));
                out.push_str(&format!("          \"cases\": {},\n", check.cases));
                out.push_str(&format!("          \"failures\": {},\n", check.failures));
                out.push_str("          \"detail\": {");
                for (di, (name, value)) in check.detail.iter().enumerate() {
                    if di > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("{}: {}", json_str(name), value));
                }
                out.push_str("},\n");
                out.push_str("          \"notes\": [");
                for (ni, note) in check.notes.iter().enumerate() {
                    if ni > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&json_str(note));
                }
                out.push_str("]\n");
                out.push_str(if ci + 1 < layer.checks.len() {
                    "        },\n"
                } else {
                    "        }\n"
                });
            }
            out.push_str("      ]\n");
            out.push_str(if li + 1 < self.layers.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// JSON string literal with the escapes the report can actually contain.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_deterministic_and_escaped() {
        let mut check = CheckReport::new("fm.engine-agreement");
        check.cases = 3;
        check.count("stratum \"a\"", 2);
        check.fail("row x ≤ 0\nbroke");
        let report = Report {
            tier: "quick",
            seed: 7,
            layers: vec![LayerReport {
                name: "model-checking",
                checks: vec![check],
            }],
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"stratum \\\"a\\\"\": 2"));
        assert!(a.contains("\\nbroke"));
        assert!(a.contains("\"passed\": false"));
    }
}
