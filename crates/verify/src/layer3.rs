//! Layer 3 — a seeded fuzzer driving generated kernels through the whole
//! pipeline under metamorphic properties.
//!
//! A [`SplitMix64`] stream (no OS entropy, no time) generates valid
//! Fortran-subset loop nests — 1D/2D, unit and non-unit strides,
//! offset-indexed neighbor reads — and lifts each through [`Stng`] twice:
//! once as generated and once alpha-renamed (same structure rendered under
//! a disjoint name table). Three properties must hold for every kernel:
//!
//! 1. **Alpha-rename invariance** — the renamed twin produces the same
//!    outcome class and the same structural fingerprint.
//! 2. **Summary/interpreter agreement** — when the pipeline claims a clean
//!    translation, the lifted postcondition is re-validated against the
//!    tree interpreter on seeded random inputs.
//! 3. **Budget honesty** — lifting under a starved budget (zero prover
//!    attempts, one unit of check fuel) must never report
//!    `Translated { degraded: None }`: an exhausted budget is visible in
//!    the outcome, on the degradation ladder.
//!
//! The emitted counts are derived only from the seed, so two runs with the
//! same seed produce byte-identical reports — `stng-verify` pins this by
//! rerunning the layer and comparing the rendered JSON.

use crate::layer2::validate_summary;
use crate::report::CheckReport;
use stng::{KernelOutcome, Stng};
use stng_intern::guard::Budget;

/// Sebastiano Vigna's SplitMix64: tiny, fast, and splittable enough for
/// per-kernel substreams. The only randomness source in this crate.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (n ≤ 2^32 here, so modulo bias is irrelevant
    /// for fuzz scheduling purposes and determinism is what matters).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// One naming scheme for rendering a generated kernel. Two disjoint tables
/// render the same structure into alpha-equivalent sources.
struct NameTable {
    size: &'static [&'static str],
    arrays: &'static [&'static str],
    loops: &'static [&'static str],
}

const NAMES_A: NameTable = NameTable {
    size: &["n", "m"],
    arrays: &["a", "b"],
    loops: &["i", "j"],
};

const NAMES_B: NameTable = NameTable {
    size: &["zq7", "zr8"],
    arrays: &["out5", "in6"],
    loops: &["p3", "q4"],
};

/// Structural description of one generated kernel, drawn once per index so
/// both name tables render the identical structure.
struct Shape {
    dims: usize,
    /// Per-dimension loop stride (1 or 2).
    strides: Vec<i64>,
    /// Neighbor-read offsets per load, per dimension (each in -1..=1).
    loads: Vec<Vec<i64>>,
    /// Real coefficient applied to the first load (1, 2, or 3 rendered as
    /// `k.0 *`), exercising constant folding in canon and synthesis.
    coeff: i64,
}

impl Shape {
    fn draw(rng: &mut SplitMix64) -> Shape {
        let dims = 1 + rng.below(2) as usize;
        let strides = (0..dims).map(|_| 1 + rng.below(2) as i64).collect();
        let nloads = 1 + rng.below(3) as usize;
        let loads = (0..nloads)
            .map(|_| (0..dims).map(|_| rng.below(3) as i64 - 1).collect())
            .collect();
        Shape {
            dims,
            strides,
            loads,
            coeff: 1 + rng.below(3) as i64,
        }
    }

    /// Renders the shape as Fortran-subset source under one name table.
    fn render(&self, kernel_name: &str, names: &NameTable) -> String {
        let size = names.size[0];
        let (out, inp) = (names.arrays[0], names.arrays[1]);
        let dim_decl = vec![format!("0:{size}"); self.dims].join(", ");
        let mut src = String::new();
        let loop_vars: Vec<&str> = names.loops[..self.dims].to_vec();
        src.push_str(&format!("procedure {kernel_name}({size}, {out}, {inp})\n"));
        src.push_str(&format!("  integer :: {size}\n"));
        src.push_str(&format!("  real, dimension({dim_decl}) :: {out}\n"));
        src.push_str(&format!("  real, dimension({dim_decl}) :: {inp}\n"));
        for v in &loop_vars {
            src.push_str(&format!("  integer :: {v}\n"));
        }
        // Loop bounds leave room for the offsets actually used: lo = 1 when
        // any load looks left, hi = size-1 when any looks right.
        let mut indent = String::from("  ");
        for (d, v) in loop_vars.iter().enumerate() {
            let needs_left = self.loads.iter().any(|offs| offs[d] < 0);
            let needs_right = self.loads.iter().any(|offs| offs[d] > 0);
            let lo = if needs_left {
                "1".to_string()
            } else {
                "0".to_string()
            };
            let hi = if needs_right {
                format!("{size}-1")
            } else {
                size.to_string()
            };
            let step = if self.strides[d] == 1 {
                String::new()
            } else {
                format!(", {}", self.strides[d])
            };
            src.push_str(&format!("{indent}do {v} = {lo}, {hi}{step}\n"));
            indent.push_str("  ");
        }
        let index = |offs: &[i64]| -> String {
            loop_vars
                .iter()
                .zip(offs)
                .map(|(v, off)| match off {
                    0 => v.to_string(),
                    o if *o > 0 => format!("{v}+{o}"),
                    o => format!("{v}-{}", -o),
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        let zero_offs = vec![0i64; self.dims];
        let rhs = self
            .loads
            .iter()
            .enumerate()
            .map(|(k, offs)| {
                let load = format!("{inp}({})", index(offs));
                if k == 0 && self.coeff != 1 {
                    format!("{}.0 * {load}", self.coeff)
                } else {
                    load
                }
            })
            .collect::<Vec<_>>()
            .join(" + ");
        src.push_str(&format!("{indent}{out}({}) = {rhs}\n", index(&zero_offs)));
        for d in (0..self.dims).rev() {
            indent.truncate(2 + d * 2);
            src.push_str(&format!("{indent}enddo\n"));
        }
        src.push_str("end procedure\n");
        src
    }
}

/// Stable outcome-class tag for rename-agreement comparison.
fn outcome_class(outcome: &KernelOutcome) -> &'static str {
    match outcome {
        KernelOutcome::Translated { degraded: None, .. } => "translated-clean",
        KernelOutcome::Translated { .. } => "translated-degraded",
        KernelOutcome::Untranslated { .. } => "untranslated",
        KernelOutcome::Timeout { .. } => "timeout",
        KernelOutcome::Crashed { .. } => "crashed",
    }
}

/// Runs the fuzzer: `count` kernels from `seed`, all three properties per
/// kernel.
pub fn run_with(seed: u64, count: usize) -> Vec<CheckReport> {
    let mut rename = CheckReport::new("fuzz.alpha-rename-invariance");
    let mut summary = CheckReport::new("fuzz.summary-validation");
    let mut budget = CheckReport::new("fuzz.budget-honesty");
    let mut classes: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    let mut validated_clauses = 0u64;
    let mut master = SplitMix64::new(seed);
    for idx in 0..count {
        let kernel_seed = master.next_u64();
        let mut rng = SplitMix64::new(kernel_seed);
        let shape = Shape::draw(&mut rng);
        let name = format!("fz{idx}");
        let src_a = shape.render(&name, &NAMES_A);
        let src_b = shape.render(&name, &NAMES_B);

        // Property 1: alpha-rename invariance of class and fingerprint.
        rename.cases += 1;
        let report_a = match Stng::new().lift_source(&src_a) {
            Ok(r) => r,
            Err(e) => {
                rename.fail(format!("{name}: generated source must parse: {e}\n{src_a}"));
                continue;
            }
        };
        let report_b = match Stng::new().lift_source(&src_b) {
            Ok(r) => r,
            Err(e) => {
                rename.fail(format!("{name}: renamed source must parse: {e}"));
                continue;
            }
        };
        let (Some(ka), Some(kb)) = (report_a.kernels.first(), report_b.kernels.first()) else {
            rename.fail(format!(
                "{name}: generated loop was not a lifting candidate"
            ));
            continue;
        };
        let (class_a, class_b) = (outcome_class(&ka.outcome), outcome_class(&kb.outcome));
        *classes.entry(class_a).or_default() += 1;
        if class_a != class_b {
            rename.fail(format!(
                "{name}: outcome class changed under alpha-rename: {class_a} vs {class_b}"
            ));
        } else if ka.fingerprint != kb.fingerprint {
            rename.fail(format!(
                "{name}: fingerprint changed under alpha-rename: {:?} vs {:?}",
                ka.fingerprint, kb.fingerprint
            ));
        }

        // Property 2: a clean translation's summary holds on the
        // interpreter.
        if let KernelOutcome::Translated {
            post,
            degraded: None,
            ..
        } = &ka.outcome
        {
            summary.cases += 1;
            match ka.kernel.as_ref() {
                Some(kernel) => match validate_summary(kernel, post, kernel_seed, &[3, 4]) {
                    Ok((validated, _skipped)) => {
                        validated_clauses += validated;
                        if validated == 0 {
                            summary
                                .fail(format!("{name}: lifted summary had no validatable clause"));
                        }
                    }
                    Err(e) => summary.fail(format!(
                        "{name}: lifted summary diverges from the interpreter: {e}"
                    )),
                },
                None => summary.fail(format!("{name}: translated report lost its kernel")),
            }
        }

        // Property 3: a starved budget is always visible in the outcome.
        budget.cases += 1;
        let starved = Budget::limited(None, Some(0), Some(1));
        match Stng::new().with_budget(starved.clone()).lift_source(&src_a) {
            Ok(r) => {
                if let Some(k) = r.kernels.first() {
                    let clean =
                        matches!(k.outcome, KernelOutcome::Translated { degraded: None, .. });
                    if clean && starved.exhausted().is_some() {
                        budget.fail(format!(
                            "{name}: budget exhausted ({:?}) yet the outcome claims a \
                             clean translation",
                            starved.exhausted()
                        ));
                    }
                }
            }
            Err(e) => budget.fail(format!("{name}: starved lift must still parse: {e}")),
        }
    }
    rename.count("kernels", count as u64);
    for (class, n) in &classes {
        rename.count(format!("class-{class}"), *n);
    }
    summary.count("clauses-validated", validated_clauses);
    if classes.get("translated-clean").copied().unwrap_or(0) == 0 {
        rename.fail("fuzz corpus vacuous: no kernel translated cleanly".to_string());
    }
    vec![rename, summary, budget]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable() {
        // Reference values from the published SplitMix64 test vector
        // (seed 1234567).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn rendered_shapes_parse_and_rename_pairs_match_structurally() {
        let mut master = SplitMix64::new(0xF00D);
        for idx in 0..8 {
            let mut rng = SplitMix64::new(master.next_u64());
            let shape = Shape::draw(&mut rng);
            let src_a = shape.render(&format!("fz{idx}"), &NAMES_A);
            let src_b = shape.render(&format!("fz{idx}"), &NAMES_B);
            let ka = stng_ir::lower::kernel_from_source(&src_a, 0)
                .unwrap_or_else(|e| panic!("A variant must lower: {e}\n{src_a}"));
            let kb = stng_ir::lower::kernel_from_source(&src_b, 0)
                .unwrap_or_else(|e| panic!("B variant must lower: {e}\n{src_b}"));
            let ca = stng_ir::canon::canonicalize(&ka);
            let cb = stng_ir::canon::canonicalize(&kb);
            assert_eq!(
                ca.fingerprint, cb.fingerprint,
                "alpha-renamed renders must collide:\n{src_a}\n{src_b}"
            );
        }
    }

    #[test]
    fn tiny_fuzz_run_is_green_and_deterministic() {
        let a = run_with(0xACE, 4);
        let b = run_with(0xACE, 4);
        assert_eq!(a, b);
        for check in &a {
            assert_eq!(check.failures, 0, "{}: {:?}", check.name, check.notes);
        }
    }
}
