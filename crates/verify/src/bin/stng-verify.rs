//! `stng-verify` — the layered soundness-verification harness CLI.
//!
//! ```text
//! stng-verify [--quick|--deep] [--seed N] [--fuzz-count N] [--out PATH]
//! ```
//!
//! The canonical JSON report goes to stdout (or `--out PATH`); wall-clock
//! timing and a pass/fail summary go to stderr. Exit status 1 when any
//! check failed, 2 on usage errors.

use std::process::ExitCode;
use std::time::Instant;
use stng_verify::Options;

fn usage() -> ExitCode {
    eprintln!(
        "usage: stng-verify [--quick|--deep] [--seed N] [--fuzz-count N] [--out PATH]\n\
         \n\
         --quick       bounded strata / corpus prefix / small fuzz batch (default)\n\
         --deep        full strata, whole corpus, >=200 fuzzed kernels\n\
         --seed N      layer-3 fuzzer seed (decimal or 0x hex)\n\
         --fuzz-count N  override the tier's fuzz batch size\n\
         --out PATH    write the JSON report to PATH instead of stdout"
    );
    ExitCode::from(2)
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let mut opts = Options::default();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.deep = false,
            "--deep" => opts.deep = true,
            "--seed" => {
                let Some(v) = args.next().as_deref().and_then(parse_u64) else {
                    return usage();
                };
                opts.seed = v;
            }
            "--fuzz-count" => {
                let Some(v) = args.next().as_deref().and_then(parse_u64) else {
                    return usage();
                };
                opts.fuzz_count = Some(v as usize);
            }
            "--out" => {
                let Some(p) = args.next() else {
                    return usage();
                };
                out_path = Some(p);
            }
            _ => return usage(),
        }
    }

    let start = Instant::now();
    let report = stng_verify::run(&opts);
    let elapsed = start.elapsed();

    let json = report.to_json();
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("stng-verify: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    } else {
        print!("{json}");
    }

    for layer in &report.layers {
        eprintln!(
            "stng-verify: {:<16} {:>9} cases, {} failures",
            layer.name,
            layer.cases(),
            layer.failures()
        );
    }
    eprintln!(
        "stng-verify: {} tier, {} cases, {} failures in {:.1}s -> {}",
        report.tier,
        report.total_cases(),
        report.total_failures(),
        elapsed.as_secs_f64(),
        if report.passed() { "PASS" } else { "FAIL" }
    );
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
