//! Layer 1b — exhaustive model checking of the VC bytecode compiler and
//! the SoA batch executor against the tree-walking evaluator.
//!
//! A fixed 3-point 1D kernel is executed once (all tiers, all trials) to
//! capture its reachable machine states. Then every VC in a small,
//! *completely enumerated* grammar is checked on every captured state by
//! both engines:
//!
//! * conclusions — every comparison `a ⋈ b` over a fixed atom set
//!   (`i`, `n`, `0`, `1`, `i+1`, `n-1`) and every comparison operator;
//! * hypotheses — none, or any single comparison from the same set
//!   (hypotheses false on a state make the VC vacuous, so all three
//!   outcomes occur);
//! * bodies — empty, or the kernel's own loop nest (exercising store and
//!   loop compilation in the VC prelude);
//! * a quantified family — `∀v ∈ [0,n]: a[v] = a[v+shift]` for shifts
//!   {0, 900} plus a coefficient-bumped variant, exercising quantifier
//!   compilation, array loads, holds/violated, and evaluation errors.
//!
//! Every (VC, state) pair must agree exactly between the compiled scalar
//! engine and the tree interpreter (`Vacuous`/`Holds`/`Violated`, and
//! errors must pair with errors). Each enumerated VC chunk is additionally
//! screened through `find_counterexample` (staged, kill-ordered, SoA
//! batched — including the lane-uniform offset fast path) against
//! `find_counterexample_exhaustive`, pinning verdict agreement of the whole
//! adaptive machinery on the same enumerated programs.

use crate::report::CheckReport;
use stng_ir::ir::{CmpOp, IrExpr};
use stng_ir::lower::kernel_from_source;
use stng_pred::compile::CompiledVcSet;
use stng_pred::eval::{check_vc_on_state, VcOutcome};
use stng_pred::lang::{OutEq, QuantBound, QuantClause};
use stng_pred::vcgen::{Vc, VcScope};
use stng_pred::Pred;
use stng_solve::bounded::{BoundedChecker, CheckSession};

const KERNEL_SRC: &str = r#"
procedure vslots(n, a, b)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  integer :: i
  do i = 1, n-1
    a(i) = b(i-1) + b(i+1)
  enddo
end procedure
"#;

/// The enumerated integer-expression atoms.
fn atoms() -> Vec<IrExpr> {
    vec![
        IrExpr::var("i"),
        IrExpr::var("n"),
        IrExpr::Int(0),
        IrExpr::Int(1),
        IrExpr::add(IrExpr::var("i"), IrExpr::Int(1)),
        IrExpr::sub(IrExpr::var("n"), IrExpr::Int(1)),
    ]
}

const OPS: [CmpOp; 6] = [
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
    CmpOp::Eq,
    CmpOp::Ne,
];

/// Every comparison over the atom set.
fn comparisons() -> Vec<IrExpr> {
    let atoms = atoms();
    let mut out = Vec::new();
    for a in &atoms {
        for b in &atoms {
            for op in OPS {
                out.push(IrExpr::cmp(op, a.clone(), b.clone()));
            }
        }
    }
    out
}

/// The quantified-conclusion family over the kernel's own arrays.
fn quant_conclusions() -> Vec<(String, Pred)> {
    let clause = |shift: i64, bump: bool| {
        let v = IrExpr::var("qv0");
        let read = if shift == 0 {
            v.clone()
        } else {
            IrExpr::add(v.clone(), IrExpr::Int(shift))
        };
        let mut rhs = IrExpr::Load {
            array: "a".into(),
            indices: vec![read],
        };
        if bump {
            rhs = IrExpr::add(rhs, IrExpr::Real(1.0));
        }
        Pred::Forall(QuantClause {
            bounds: vec![QuantBound::inclusive(
                "qv0",
                IrExpr::Int(0),
                IrExpr::var("n"),
            )],
            eq: OutEq {
                array: "a".into(),
                indices: vec![v],
                rhs,
            },
        })
    };
    vec![
        ("holds".into(), clause(0, false)),
        ("violated".into(), clause(0, true)),
        ("erroring".into(), clause(900, false)),
    ]
}

/// Checks one VC set on every captured state by both engines, recording
/// each (VC, state) pair and the outcome class tallies.
fn check_set(session: &CheckSession, vcs: &[Vc], check: &mut CheckReport, outcomes: &mut [u64; 4]) {
    let compiled = match CompiledVcSet::compile(vcs, session.map()) {
        Ok(c) => c,
        Err(e) => {
            check.fail(format!("enumerated VC set failed to compile: {e}"));
            return;
        }
    };
    let mut sc = compiled.scratch::<stng_ir::value::ModInt>();
    for unit in session.captured_units() {
        let unit = unit.as_ref().expect("fixed kernel capture succeeds");
        for (origin, state) in &unit.states {
            let oracle_state = state.to_state();
            for (k, vc) in vcs.iter().enumerate() {
                check.cases += 1;
                let slow = check_vc_on_state(vc, &oracle_state);
                let fast = compiled.check(k, state, &mut sc);
                match (slow, fast) {
                    (Ok(a), Ok(b)) if a == b => {
                        outcomes[match a {
                            VcOutcome::Vacuous => 0,
                            VcOutcome::Holds => 1,
                            VcOutcome::Violated => 2,
                        }] += 1;
                    }
                    (Err(_), Err(_)) => outcomes[3] += 1,
                    (a, b) => check.fail(format!(
                        "VC '{}' at {origin} (size {}, trial {}): tree {a:?} vs compiled {b:?}",
                        vc.name, unit.size, unit.trial
                    )),
                }
            }
        }
    }

    // The same enumerated set through the full adaptive screen (SoA batch,
    // kill ordering, escalation) against the exhaustive reference scan.
    let adaptive = session.find_counterexample(vcs);
    let exhaustive = session.find_counterexample_exhaustive(vcs);
    let agree = matches!(
        (&adaptive, &exhaustive),
        (Ok(None), Ok(None)) | (Ok(Some(_)), Ok(Some(_))) | (Err(_), Err(_))
    );
    check.cases += 1;
    if !agree {
        check.fail(format!(
            "adaptive screen verdict diverged on an enumerated chunk: \
             adaptive {adaptive:?} vs exhaustive {exhaustive:?}"
        ));
    }
}

/// Runs the slot-program model checker. `deep` enables the kernel-body
/// prelude variant for every VC (doubling the enumeration).
pub fn run(deep: bool) -> Vec<CheckReport> {
    let mut check = CheckReport::new("slots.enumerated-vcs");
    let kernel = kernel_from_source(KERNEL_SRC, 0).expect("fixed slot kernel lowers");
    let body = kernel.body.clone();
    let session = CheckSession::new(
        BoundedChecker {
            grid_sizes: vec![3, 4],
            trials_per_size: 2,
            ..BoundedChecker::default()
        },
        kernel,
    );
    // Touch every tier so `captured_units` sees them all.
    let warmup = Vc {
        name: "warmup".into(),
        hypotheses: vec![],
        body: vec![],
        conclusion: Pred::Bool(IrExpr::cmp(CmpOp::Eq, IrExpr::Int(0), IrExpr::Int(0))),
        int_scalars: vec![],
        scope: VcScope::Initial,
    };
    session
        .find_counterexample(std::slice::from_ref(&warmup))
        .expect("warmup screen succeeds");

    let comparisons = comparisons();
    // Hypothesis options: none, or one comparison (sampled exhaustively
    // from a stride through the comparison set to keep the product
    // tractable while covering all operators and both truth values).
    let hyp_options: Vec<Option<IrExpr>> = std::iter::once(None)
        .chain(comparisons.iter().step_by(7).cloned().map(Some))
        .collect();
    let bodies: Vec<(&str, Vec<stng_ir::ir::IrStmt>)> = if deep {
        vec![("nobody", vec![]), ("kernelbody", body)]
    } else {
        vec![("nobody", vec![])]
    };

    let mut vcs: Vec<Vc> = Vec::new();
    let mut enumerated = 0u64;
    let mut outcomes = [0u64; 4];
    for (body_tag, body) in &bodies {
        for (ci, conclusion) in comparisons.iter().enumerate() {
            for (hi, hyp) in hyp_options.iter().enumerate() {
                enumerated += 1;
                vcs.push(Vc {
                    name: format!("cmp{ci}-hyp{hi}-{body_tag}"),
                    hypotheses: hyp.iter().cloned().map(Pred::Bool).collect(),
                    body: body.clone(),
                    conclusion: Pred::Bool(conclusion.clone()),
                    int_scalars: vec![],
                    scope: VcScope::Initial,
                });
                if vcs.len() == 64 {
                    check_set(&session, &vcs, &mut check, &mut outcomes);
                    vcs.clear();
                }
            }
        }
        for (tag, conclusion) in quant_conclusions() {
            for (hi, hyp) in hyp_options.iter().enumerate() {
                enumerated += 1;
                vcs.push(Vc {
                    name: format!("quant-{tag}-hyp{hi}-{body_tag}"),
                    hypotheses: hyp.iter().cloned().map(Pred::Bool).collect(),
                    body: body.clone(),
                    conclusion: conclusion.clone(),
                    int_scalars: vec![],
                    scope: VcScope::Initial,
                });
                if vcs.len() == 64 {
                    check_set(&session, &vcs, &mut check, &mut outcomes);
                    vcs.clear();
                }
            }
        }
    }
    if !vcs.is_empty() {
        check_set(&session, &vcs, &mut check, &mut outcomes);
    }

    check.count("vcs-enumerated", enumerated);
    check.count("vacuous", outcomes[0]);
    check.count("holds", outcomes[1]);
    check.count("violated", outcomes[2]);
    check.count("errors", outcomes[3]);
    // The grammar must actually reach every outcome class; a silently
    // narrowed enumeration would show up here.
    for (class, seen) in ["vacuous", "holds", "violated", "errors"]
        .iter()
        .zip(outcomes)
    {
        if seen == 0 {
            check.fail(format!("outcome class '{class}' never observed"));
        }
    }
    vec![check]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_kernel_lowers_and_small_sweep_is_green() {
        // The full sweep runs via `stng-verify`; keep the debug-build test
        // to one chunk.
        let kernel = kernel_from_source(KERNEL_SRC, 0).expect("lowers");
        let session = CheckSession::new(
            BoundedChecker {
                grid_sizes: vec![3],
                trials_per_size: 1,
                ..BoundedChecker::default()
            },
            kernel,
        );
        let mut check = CheckReport::new("test");
        let mut outcomes = [0u64; 4];
        let vcs: Vec<Vc> = comparisons()
            .iter()
            .take(12)
            .enumerate()
            .map(|(k, c)| Vc {
                name: format!("t{k}"),
                hypotheses: vec![],
                body: vec![],
                conclusion: Pred::Bool(c.clone()),
                int_scalars: vec![],
                scope: VcScope::Initial,
            })
            .collect();
        check_set(&session, &vcs, &mut check, &mut outcomes);
        assert_eq!(check.failures, 0, "{:?}", check.notes);
        assert!(check.cases > 0);
    }
}
