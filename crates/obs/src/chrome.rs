//! Chrome trace-event export: turns recorded thread rings into the JSON
//! Trace Event Format that Perfetto and `chrome://tracing` load directly.
//!
//! Each recorded thread becomes one track: a `"M"` thread-name metadata
//! record, `"X"` complete events for matched open/close span pairs (nested
//! spans nest on the track), and `"i"` instant events. Timestamps are the
//! recorder's arm-epoch nanoseconds converted to the format's microseconds.
//!
//! Matching is a per-thread stack — guards are `!Send`, so a well-formed
//! ring closes spans in LIFO order on the thread that opened them.
//! [`wellformedness`] reports any violation; the nesting tests assert zero.

use crate::recorder::{Event, EventKind, ThreadTrace};
use std::fmt::Write as _;

/// Nesting audit of one thread's ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Wellformedness {
    /// Spans still open at the end of the ring (snapshot mid-span).
    pub unmatched_opens: usize,
    /// Closes with no matching open, or closing a different span than the
    /// innermost open one — impossible unless guards leak across threads.
    pub mismatched_closes: usize,
}

impl Wellformedness {
    /// No violations.
    pub fn is_clean(&self) -> bool {
        self.unmatched_opens == 0 && self.mismatched_closes == 0
    }
}

/// Audits span nesting on one thread: every `Close` must match the
/// innermost open span of the same name, and a quiescent snapshot must
/// leave the stack empty.
pub fn wellformedness(trace: &ThreadTrace) -> Wellformedness {
    let mut stack: Vec<&Event> = Vec::new();
    let mut report = Wellformedness::default();
    for event in &trace.events {
        match event.kind {
            EventKind::Open => stack.push(event),
            EventKind::Close => match stack.pop() {
                Some(open) if open.name == event.name => {}
                _ => report.mismatched_closes += 1,
            },
            EventKind::Instant => {}
        }
    }
    report.unmatched_opens = stack.len();
    report
}

/// Counts spans (open events) named `name` across all threads.
pub fn span_count(threads: &[ThreadTrace], name: &str) -> usize {
    threads
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| e.kind == EventKind::Open && e.name.as_str() == name)
        .count()
}

/// The close-event details of every span named `name`, across threads (the
/// kernel names of `lift.kernel` spans, the hit/miss of cache lookups…).
pub fn span_details(threads: &[ThreadTrace], name: &str) -> Vec<&'static str> {
    threads
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| e.kind == EventKind::Close && e.name.as_str() == name)
        .filter_map(|e| e.detail.map(|d| d.as_str()))
        .collect()
}

fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail")
            }
            c => out.push(c),
        }
    }
    out
}

fn write_args(out: &mut String, detail: Option<&str>, arg: u64) {
    out.push_str(",\"args\":{");
    let mut first = true;
    if let Some(detail) = detail {
        write!(out, "\"detail\":\"{}\"", escaped(detail)).expect("infallible");
        first = false;
    }
    if arg != 0 {
        if !first {
            out.push(',');
        }
        write!(out, "\"arg\":{arg}").expect("infallible");
    }
    out.push('}');
}

/// Renders thread traces as a Chrome trace-event JSON document. Spans left
/// open by a mid-run snapshot are emitted as `"B"` begin events so the
/// trace still loads; a quiescent export has none.
pub fn trace_json(threads: &[ThreadTrace]) -> String {
    let us = |ns: u64| ns as f64 / 1e3;
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |line: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("\n  ");
        out.push_str(&line);
    };
    for thread in threads {
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                thread.tid,
                escaped(&thread.thread)
            ),
            &mut first,
        );
        // Match open/close pairs into "X" complete events. The completes
        // are emitted at close time; Perfetto sorts by ts, so order in the
        // array does not matter.
        let mut stack: Vec<&Event> = Vec::new();
        for event in &thread.events {
            match event.kind {
                EventKind::Open => stack.push(event),
                EventKind::Close => {
                    let Some(open) = stack.pop().filter(|o| o.name == event.name) else {
                        continue; // audited separately by `wellformedness`
                    };
                    let mut line = format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
                         \"name\":\"{}\"",
                        thread.tid,
                        us(open.ts_ns),
                        us(event.ts_ns.saturating_sub(open.ts_ns)),
                        escaped(event.name.as_str())
                    );
                    write_args(&mut line, event.detail.map(|d| d.as_str()), event.arg);
                    line.push('}');
                    emit(line, &mut first);
                }
                EventKind::Instant => {
                    let mut line = format!(
                        "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"s\":\"t\",\
                         \"name\":\"{}\"",
                        thread.tid,
                        us(event.ts_ns),
                        escaped(event.name.as_str())
                    );
                    write_args(&mut line, event.detail.map(|d| d.as_str()), event.arg);
                    line.push('}');
                    emit(line, &mut first);
                }
            }
        }
        for open in stack {
            emit(
                format!(
                    "{{\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"name\":\"{}\"}}",
                    thread.tid,
                    us(open.ts_ns),
                    escaped(open.name.as_str())
                ),
                &mut first,
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Event, EventKind, ThreadTrace};
    use stng_intern::Symbol;

    fn ev(name: &str, kind: EventKind, ts_ns: u64) -> Event {
        Event {
            name: Symbol::intern(name),
            kind,
            ts_ns,
            detail: None,
            arg: 0,
        }
    }

    fn trace(events: Vec<Event>) -> ThreadTrace {
        ThreadTrace {
            thread: "t".to_string(),
            tid: 0,
            events,
            dropped: 0,
        }
    }

    #[test]
    fn matched_spans_export_as_complete_events() {
        let t = trace(vec![
            ev("outer", EventKind::Open, 1_000),
            ev("inner", EventKind::Open, 2_000),
            ev("inner", EventKind::Close, 3_000),
            ev("ping", EventKind::Instant, 3_500),
            ev("outer", EventKind::Close, 4_000),
        ]);
        assert!(wellformedness(&t).is_clean());
        let json = trace_json(&[t]);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"inner\""));
        assert!(json.contains("\"dur\":1.000"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"thread_name\""));
        assert!(!json.contains("\"ph\":\"B\""));
    }

    #[test]
    fn unmatched_events_are_audited_and_still_load() {
        let t = trace(vec![
            ev("a", EventKind::Open, 1_000),
            ev("b", EventKind::Close, 2_000),
        ]);
        let audit = wellformedness(&t);
        assert_eq!(audit.mismatched_closes, 1);
        assert_eq!(audit.unmatched_opens, 0);
        let open_only = trace(vec![ev("a", EventKind::Open, 1_000)]);
        assert_eq!(wellformedness(&open_only).unmatched_opens, 1);
        assert!(trace_json(&[open_only]).contains("\"ph\":\"B\""));
    }

    #[test]
    fn helpers_count_and_collect_details() {
        let mut close = ev("lift.kernel", EventKind::Close, 2_000);
        close.detail = Some(Symbol::intern("heat3d"));
        let t = trace(vec![ev("lift.kernel", EventKind::Open, 1_000), close]);
        let threads = [t];
        assert_eq!(span_count(&threads, "lift.kernel"), 1);
        assert_eq!(span_details(&threads, "lift.kernel"), vec!["heat3d"]);
    }
}
