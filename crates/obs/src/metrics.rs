//! The metrics registry: named counters, time accumulators, gauges, and
//! histograms with pre-registered handles.
//!
//! Registration ([`register`] or a [`Lazy`] static) hashes the metric name
//! exactly once and hands back a dense cell; every increment after that is
//! one atomic add — no string hashing, no locking on the hot path. Adding a
//! counter anywhere in the workspace is a one-line `Lazy` declaration
//! instead of a field threaded through four crates.
//!
//! Kinds are semantic, not structural (every scalar cell is a `u64`):
//!
//! * **Counter** — monotonic event counts with deterministic semantics
//!   (cache hits, captures, memo misses). Single-threaded runs of the same
//!   input produce byte-identical counter snapshots; the determinism test
//!   pins this.
//! * **TimeNs** — monotonic nanosecond accumulators: schedule-dependent,
//!   excluded from the deterministic section.
//! * **Gauge** — last-write-wins occupancy values (arena entries).
//! * **Histogram** — power-of-two-bucketed distributions (per-kernel phase
//!   durations).
//!
//! The per-kernel [`MetricSet`] is the registry's scoped aggregation unit:
//! synthesis fills one per kernel, `PhaseTimings` is derived from it (the
//! façade the reports and bench gates keep consuming), and
//! [`MetricSet::flush`] folds it into the process-wide cells that
//! `stng-batch --metrics-json` exports.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use stng_intern::Symbol;

/// Metric kind (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Deterministic monotonic count.
    Counter,
    /// Wall-time accumulator (nanoseconds).
    TimeNs,
    /// Last-write-wins value.
    Gauge,
}

/// Dense registry index of a scalar metric; the key of [`MetricSet`] cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricId(u32);

/// A registered scalar metric: copyable, lock-free to update.
#[derive(Clone, Copy)]
pub struct Handle {
    cell: &'static AtomicU64,
    id: MetricId,
}

impl Handle {
    /// Adds to a counter/time cell.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets a gauge cell.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// The dense id (for [`MetricSet`] accumulation).
    pub fn id(&self) -> MetricId {
        self.id
    }
}

/// A registered histogram: 64 power-of-two buckets plus count and sum.
/// Bucket `k` holds values whose bit length is `k` (bucket 0: value 0).
pub struct HistogramCells {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Histogram handle.
#[derive(Clone, Copy)]
pub struct Histogram {
    cells: &'static HistogramCells,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let bucket = (u64::BITS - v.leading_zeros()) as usize;
        self.cells.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// (count, sum).
    pub fn totals(&self) -> (u64, u64) {
        (
            self.cells.count.load(Ordering::Relaxed),
            self.cells.sum.load(Ordering::Relaxed),
        )
    }
}

#[derive(Default)]
struct Registry {
    index: HashMap<&'static str, u32>,
    /// (name, kind, cell), insertion-ordered; `MetricId` indexes this.
    scalars: Vec<(&'static str, MetricKind, &'static AtomicU64)>,
    histograms: Vec<(&'static str, &'static HistogramCells)>,
    hist_index: HashMap<&'static str, usize>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(Default::default)
}

/// Registers (or finds) a scalar metric. Idempotent per name; the kind of
/// the first registration wins. Call once and keep the handle — this is
/// the only path that locks or hashes.
pub fn register(name: &'static str, kind: MetricKind) -> Handle {
    let mut reg = registry().lock().expect("metric registry poisoned");
    if let Some(&at) = reg.index.get(name) {
        let (_, _, cell) = reg.scalars[at as usize];
        return Handle {
            cell,
            id: MetricId(at),
        };
    }
    let at = reg.scalars.len() as u32;
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    reg.index.insert(name, at);
    reg.scalars.push((name, kind, cell));
    Handle {
        cell,
        id: MetricId(at),
    }
}

/// Registers a scalar metric whose name is built at runtime (arena gauges).
/// The name is interned — symbols are never swept — so the registry still
/// borrows `'static` text.
pub fn register_dynamic(name: &str, kind: MetricKind) -> Handle {
    register(Symbol::intern(name).as_str(), kind)
}

/// Registers (or finds) a histogram.
pub fn register_histogram(name: &'static str) -> Histogram {
    let mut reg = registry().lock().expect("metric registry poisoned");
    if let Some(&at) = reg.hist_index.get(name) {
        return Histogram {
            cells: reg.histograms[at].1,
        };
    }
    let cells: &'static HistogramCells = Box::leak(Box::new(HistogramCells {
        buckets: [(); 64].map(|_| AtomicU64::new(0)),
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
    }));
    let at = reg.histograms.len();
    reg.hist_index.insert(name, at);
    reg.histograms.push((name, cells));
    Histogram { cells }
}

/// A lazily registered scalar metric, for one-line declarations at the
/// instrumentation site:
///
/// ```
/// static CACHE_HITS: stng_obs::metrics::Lazy =
///     stng_obs::metrics::Lazy::counter("example.cache.hits");
/// CACHE_HITS.add(1);
/// ```
pub struct Lazy {
    name: &'static str,
    kind: MetricKind,
    handle: OnceLock<Handle>,
}

impl Lazy {
    /// A deterministic counter.
    pub const fn counter(name: &'static str) -> Lazy {
        Lazy {
            name,
            kind: MetricKind::Counter,
            handle: OnceLock::new(),
        }
    }

    /// A wall-time accumulator.
    pub const fn time_ns(name: &'static str) -> Lazy {
        Lazy {
            name,
            kind: MetricKind::TimeNs,
            handle: OnceLock::new(),
        }
    }

    /// A gauge.
    pub const fn gauge(name: &'static str) -> Lazy {
        Lazy {
            name,
            kind: MetricKind::Gauge,
            handle: OnceLock::new(),
        }
    }

    /// The registered handle (registering on first use).
    pub fn handle(&self) -> Handle {
        *self.handle.get_or_init(|| register(self.name, self.kind))
    }

    /// Adds to the cell.
    #[inline]
    pub fn add(&self, n: u64) {
        self.handle().add(n);
    }

    /// Sets the cell.
    #[inline]
    pub fn set(&self, v: u64) {
        self.handle().set(v);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.handle().get()
    }
}

/// A scoped bundle of registry cells — the per-kernel aggregation unit.
/// Cells are addressed by [`MetricId`], so a set and the global registry
/// agree on what every slot means.
pub struct MetricSet {
    cells: Vec<AtomicU64>,
}

impl MetricSet {
    /// An empty set sized to the current registry.
    pub fn new() -> MetricSet {
        let n = registry()
            .lock()
            .expect("metric registry poisoned")
            .scalars
            .len();
        MetricSet {
            cells: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Adds into one cell (shared-reference, so parallel candidate workers
    /// can feed one kernel's set).
    #[inline]
    pub fn add(&self, id: MetricId, n: u64) {
        self.cells[id.0 as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Reads one cell.
    pub fn get(&self, id: MetricId) -> u64 {
        self.cells[id.0 as usize].load(Ordering::Relaxed)
    }

    /// Folds this set into the process-wide cells (gauges are skipped: a
    /// per-kernel snapshot of an occupancy value has no meaningful sum).
    pub fn flush(&self) {
        let reg = registry().lock().expect("metric registry poisoned");
        for (cell, (_, kind, global)) in self.cells.iter().zip(&reg.scalars) {
            let v = cell.load(Ordering::Relaxed);
            if v > 0 && *kind != MetricKind::Gauge {
                global.fetch_add(v, Ordering::Relaxed);
            }
        }
    }
}

impl Default for MetricSet {
    fn default() -> Self {
        MetricSet::new()
    }
}

/// Adds directly into a process-wide cell by id — for cold paths (fallback
/// validation, late corrections) that have no [`MetricSet`] in hand.
pub fn add_global(id: MetricId, n: u64) {
    let reg = registry().lock().expect("metric registry poisoned");
    let (_, _, cell) = reg.scalars[id.0 as usize];
    cell.fetch_add(n, Ordering::Relaxed);
}

/// The pre-registered per-kernel phase metrics — the registry's view of
/// what `PhaseTimings` used to thread by hand. New phase counters are added
/// here (one line) and picked up by every report.
pub struct PhaseMetrics {
    pub capture_ns: MetricId,
    pub bounded_ns: MetricId,
    pub prove_ns: MetricId,
    pub captures: MetricId,
    pub oblig_hits: MetricId,
    pub oblig_misses: MetricId,
    pub core_hits: MetricId,
    pub screened: MetricId,
    pub survivors: MetricId,
    pub batch_scans: MetricId,
}

/// The phase-metric ids (registered on first use).
pub fn phase() -> &'static PhaseMetrics {
    static PHASE: OnceLock<PhaseMetrics> = OnceLock::new();
    PHASE.get_or_init(|| PhaseMetrics {
        capture_ns: register("phase.capture_ns", MetricKind::TimeNs).id(),
        bounded_ns: register("phase.bounded_ns", MetricKind::TimeNs).id(),
        prove_ns: register("phase.prove_ns", MetricKind::TimeNs).id(),
        captures: register("phase.captures", MetricKind::Counter).id(),
        oblig_hits: register("prover.oblig_hits", MetricKind::Counter).id(),
        oblig_misses: register("prover.oblig_misses", MetricKind::Counter).id(),
        core_hits: register("prover.core_hits", MetricKind::Counter).id(),
        screened: register("bounded.screened", MetricKind::Counter).id(),
        survivors: register("bounded.survivors", MetricKind::Counter).id(),
        batch_scans: register("bounded.batch_scans", MetricKind::Counter).id(),
    })
}

/// Zeroes every registered cell (tests; quiescent points only).
pub fn reset() {
    let reg = registry().lock().expect("metric registry poisoned");
    for (_, _, cell) in &reg.scalars {
        cell.store(0, Ordering::Relaxed);
    }
    for (_, cells) in &reg.histograms {
        for b in &cells.buckets {
            b.store(0, Ordering::Relaxed);
        }
        cells.count.store(0, Ordering::Relaxed);
        cells.sum.store(0, Ordering::Relaxed);
    }
}

fn write_scalar_section(out: &mut String, kind: MetricKind, reg: &Registry) {
    let mut rows: Vec<(&str, u64)> = reg
        .scalars
        .iter()
        .filter(|(_, k, _)| *k == kind)
        .map(|(name, _, cell)| (*name, cell.load(Ordering::Relaxed)))
        .collect();
    rows.sort_by_key(|(name, _)| *name);
    out.push('{');
    for (k, (name, v)) in rows.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        write!(out, "\n    \"{name}\": {v}").expect("writing to a String cannot fail");
    }
    out.push_str(if rows.is_empty() { "}" } else { "\n  }" });
}

/// Renders only the deterministic counters, sorted by name — the byte
/// string the determinism test compares across runs.
pub fn counters_snapshot() -> String {
    let reg = registry().lock().expect("metric registry poisoned");
    let mut out = String::new();
    write_scalar_section(&mut out, MetricKind::Counter, &reg);
    out
}

/// Renders the whole registry as JSON (`stng-batch --metrics-json`):
/// counters, time accumulators, gauges, and histograms, each sorted by
/// name.
pub fn snapshot_json() -> String {
    let reg = registry().lock().expect("metric registry poisoned");
    let mut out = String::from("{\n  \"schema\": 1,\n  \"counters\": ");
    write_scalar_section(&mut out, MetricKind::Counter, &reg);
    out.push_str(",\n  \"time_ns\": ");
    write_scalar_section(&mut out, MetricKind::TimeNs, &reg);
    out.push_str(",\n  \"gauges\": ");
    write_scalar_section(&mut out, MetricKind::Gauge, &reg);
    out.push_str(",\n  \"histograms\": {");
    let mut hists: Vec<(&str, &HistogramCells)> = reg
        .histograms
        .iter()
        .map(|(name, cells)| (*name, *cells))
        .collect();
    hists.sort_by_key(|(name, _)| *name);
    for (k, (name, cells)) in hists.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let top = cells
            .buckets
            .iter()
            .rposition(|b| b.load(Ordering::Relaxed) > 0)
            .map(|p| p + 1)
            .unwrap_or(0);
        let buckets: Vec<String> = cells.buckets[..top]
            .iter()
            .map(|b| b.load(Ordering::Relaxed).to_string())
            .collect();
        write!(
            out,
            "\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
            cells.count.load(Ordering::Relaxed),
            cells.sum.load(Ordering::Relaxed),
            buckets.join(", ")
        )
        .expect("writing to a String cannot fail");
    }
    out.push_str(if reg.histograms.is_empty() {
        "}\n}\n"
    } else {
        "\n  }\n}\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; serialize tests that reset it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn registration_is_idempotent_and_handles_share_cells() {
        let _gate = lock();
        let a = register("test.metric.a", MetricKind::Counter);
        let b = register("test.metric.a", MetricKind::Counter);
        assert_eq!(a.id(), b.id());
        let before = a.get();
        b.add(3);
        assert_eq!(a.get(), before + 3);
    }

    #[test]
    fn metric_sets_accumulate_and_flush() {
        let _gate = lock();
        let h = register("test.metric.flush", MetricKind::Counter);
        let set = MetricSet::new();
        set.add(h.id(), 5);
        set.add(h.id(), 2);
        assert_eq!(set.get(h.id()), 7);
        let before = h.get();
        set.flush();
        assert_eq!(h.get(), before + 7);
    }

    #[test]
    fn snapshot_sections_sort_and_histograms_bucket_by_bit_length() {
        let _gate = lock();
        register("test.zz", MetricKind::Counter);
        register("test.aa", MetricKind::Counter);
        let counters = counters_snapshot();
        let aa = counters.find("test.aa").unwrap();
        let zz = counters.find("test.zz").unwrap();
        assert!(aa < zz);
        let h = register_histogram("test.hist");
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(1000); // bucket 10
        let (count, sum) = h.totals();
        assert!(count >= 3 && sum >= 1001);
        let json = snapshot_json();
        assert!(json.contains("\"test.hist\""));
    }

    #[test]
    fn dynamic_registration_interns_the_name() {
        let _gate = lock();
        let name = format!("test.dyn.{}", "arena");
        let h = register_dynamic(&name, MetricKind::Gauge);
        h.set(42);
        assert_eq!(h.get(), 42);
        assert!(snapshot_json().contains("\"test.dyn.arena\": 42"));
    }
}
