//! The hierarchical span recorder: per-thread lock-free rings, RAII span
//! guards, and instant events.
//!
//! Always compiled, default off. [`arm`] flips one global flag; a disarmed
//! [`span`] is a single relaxed load and returns a no-op guard. Armed, each
//! span pushes an `Open` event on construction and a `Close` on drop into
//! the calling thread's ring. Guards are `!Send`, so every `Close` lands on
//! the same thread (and ring) as its `Open` — the well-formedness the
//! Chrome exporter and the nesting tests rely on.
//!
//! Rings are single-producer chunk lists: the owner thread appends into
//! fixed-size chunks (no reallocation, so a reader never observes a moved
//! buffer) and publishes the new length with a release store. Snapshot
//! readers acquire the length and walk the chunk list; they may run
//! concurrently with writers and see a consistent prefix. Each ring is
//! capped at [`MAX_EVENTS`]; past it, events are counted as dropped rather
//! than grown without bound.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use stng_intern::Symbol;

/// Maximum events retained per thread ring (~48 MB worst case across a
/// typical worker fleet); the excess is counted in
/// [`ThreadTrace::dropped`], never silently lost.
pub const MAX_EVENTS: usize = 1 << 20;

/// Events per chunk. Chunks are allocated on demand and never moved, so
/// concurrent snapshot readers stay safe without locking the writer.
const CHUNK: usize = 4096;

/// What one ring entry records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Open,
    /// A span closed (carries the guard's final detail/arg).
    Close,
    /// A point event attached to the enclosing span's thread track.
    Instant,
}

/// One recorded event. `Copy` and pointer-free (names are interned
/// [`Symbol`]s), so rings never run destructors and snapshots are plain
/// memcpys.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Interned span/event name (see `crate::names`).
    pub name: Symbol,
    /// Open / Close / Instant.
    pub kind: EventKind,
    /// Nanoseconds since the recorder's arm epoch.
    pub ts_ns: u64,
    /// Optional interned qualifier (`hit`, `memo_miss`, a degrade reason…).
    pub detail: Option<Symbol>,
    /// Free numeric payload (candidate index, split depth…).
    pub arg: u64,
}

struct Chunk {
    slots: Box<[UnsafeCell<MaybeUninit<Event>>]>,
    next: AtomicPtr<Chunk>,
}

impl Chunk {
    fn alloc() -> *mut Chunk {
        let slots = (0..CHUNK)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::into_raw(Box::new(Chunk {
            slots,
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// One thread's event ring. Single producer (the owning thread), any number
/// of snapshot readers.
pub struct Ring {
    head: AtomicPtr<Chunk>,
    /// Writer-private cursor (only the owner thread stores it, except
    /// [`Ring::reset`] under the quiescence contract).
    tail: AtomicPtr<Chunk>,
    len: AtomicUsize,
    dropped: AtomicU64,
    thread_name: String,
    tid: u64,
}

// SAFETY: slots are written only by the owning thread at indices >= the
// published `len` and read by others only at indices < `len`; the
// release/acquire pair on `len` orders the two. Chunks are never freed
// while shared (only `reset`, under the documented quiescence contract).
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    fn new(thread_name: String, tid: u64) -> Ring {
        let first = Chunk::alloc();
        Ring {
            head: AtomicPtr::new(first),
            tail: AtomicPtr::new(first),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            thread_name,
            tid,
        }
    }

    /// Appends one event. Must only be called from the owning thread.
    fn push(&self, event: Event) {
        let idx = self.len.load(Ordering::Relaxed);
        if idx >= MAX_EVENTS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut tail = self.tail.load(Ordering::Relaxed);
        if idx > 0 && idx.is_multiple_of(CHUNK) {
            let fresh = Chunk::alloc();
            // Link before publishing `len`, so a reader that sees the new
            // length can always reach the chunk holding the new event.
            unsafe { (*tail).next.store(fresh, Ordering::Release) };
            self.tail.store(fresh, Ordering::Relaxed);
            tail = fresh;
        }
        unsafe {
            *(*tail).slots[idx % CHUNK].get() = MaybeUninit::new(event);
        }
        self.len.store(idx + 1, Ordering::Release);
    }

    /// Copies the published prefix of the ring.
    fn events(&self) -> Vec<Event> {
        let len = self.len.load(Ordering::Acquire);
        let mut out = Vec::with_capacity(len);
        let mut chunk = self.head.load(Ordering::Acquire);
        let mut read = 0;
        while read < len {
            let take = (len - read).min(CHUNK);
            unsafe {
                for slot in &(&(*chunk).slots)[..take] {
                    out.push((*slot.get()).assume_init());
                }
                if read + take < len {
                    chunk = (*chunk).next.load(Ordering::Acquire);
                }
            }
            read += take;
        }
        out
    }

    /// Rewinds the ring to empty, freeing all but the first chunk. Callers
    /// must hold the quiescence contract (no concurrent pushes).
    fn reset(&self) {
        let head = self.head.load(Ordering::Relaxed);
        unsafe {
            let mut chunk = (*head).next.swap(ptr::null_mut(), Ordering::Relaxed);
            while !chunk.is_null() {
                let next = (*chunk).next.load(Ordering::Relaxed);
                drop(Box::from_raw(chunk));
                chunk = next;
            }
        }
        self.tail.store(head, Ordering::Relaxed);
        self.len.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        self.reset();
        let head = self.head.load(Ordering::Relaxed);
        unsafe { drop(Box::from_raw(head)) };
    }
}

/// Global ring registry: rings are `Arc`-held here as well as in the
/// owner's thread-local, so a scoped worker thread's events survive the
/// thread (the parallel CEGIS workers live only for one `parallel::map`
/// call; their traces must not die with them).
fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(Default::default)
}

thread_local! {
    static RING: Arc<Ring> = {
        let mut rings = registry().lock().expect("ring registry poisoned");
        let tid = rings.len() as u64;
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("worker-{tid}"));
        let ring = Arc::new(Ring::new(name, tid));
        rings.push(Arc::clone(&ring));
        ring
    };
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Starts recording. Cheap and idempotent; the timestamp epoch is fixed on
/// the first arm of the process.
pub fn arm() {
    epoch();
    ARMED.store(true, Ordering::Release);
}

/// Stops recording (already-open guards still record their close, keeping
/// every trace well formed).
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
}

/// Whether the recorder is armed. This relaxed load is the entire disarmed
/// cost of every instrumentation site.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Clears every ring. Quiescent points only (see the crate docs).
pub fn reset() {
    for ring in registry().lock().expect("ring registry poisoned").iter() {
        ring.reset();
    }
}

fn push(event: Event) {
    RING.with(|ring| ring.push(event));
}

/// A pre-internable span/event name: interning happens once, on first
/// armed use, and every use after that copies the cached [`Symbol`].
pub struct Name {
    raw: &'static str,
    sym: OnceLock<Symbol>,
}

impl Name {
    /// A name constant (see `crate::names` for the pipeline taxonomy).
    pub const fn new(raw: &'static str) -> Name {
        Name {
            raw,
            sym: OnceLock::new(),
        }
    }

    /// The interned symbol (interning on first call).
    pub fn symbol(&self) -> Symbol {
        *self.sym.get_or_init(|| Symbol::intern_static(self.raw))
    }

    /// The raw name.
    pub fn as_str(&self) -> &'static str {
        self.raw
    }
}

/// RAII span: records `Open` now and `Close` on drop. `!Send`, so both
/// events land in the same thread's ring.
#[must_use = "a span guard records its close when dropped"]
pub struct SpanGuard {
    /// `None` when the recorder was disarmed at open: the guard is a no-op.
    name: Option<Symbol>,
    detail: Option<Symbol>,
    arg: u64,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Attaches a qualifier reported in the span's close event (e.g.
    /// `memo_hit`).
    pub fn detail(&mut self, detail: &Name) {
        if self.name.is_some() {
            self.detail = Some(detail.symbol());
        }
    }

    /// Attaches an already-interned qualifier (dynamic strings — kernel
    /// names, degrade reasons — go through [`Symbol::intern`] first).
    pub fn detail_sym(&mut self, detail: Symbol) {
        if self.name.is_some() {
            self.detail = Some(detail);
        }
    }

    /// Attaches a numeric payload reported in the close event.
    pub fn arg(&mut self, arg: u64) {
        if self.name.is_some() {
            self.arg = arg;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            push(Event {
                name,
                kind: EventKind::Close,
                ts_ns: now_ns(),
                detail: self.detail,
                arg: self.arg,
            });
        }
    }
}

/// Opens a span. Disarmed: one relaxed load, no-op guard.
#[inline]
pub fn span(name: &Name) -> SpanGuard {
    if !armed() {
        return SpanGuard {
            name: None,
            detail: None,
            arg: 0,
            _not_send: PhantomData,
        };
    }
    let sym = name.symbol();
    push(Event {
        name: sym,
        kind: EventKind::Open,
        ts_ns: now_ns(),
        detail: None,
        arg: 0,
    });
    SpanGuard {
        name: Some(sym),
        detail: None,
        arg: 0,
        _not_send: PhantomData,
    }
}

/// Records an instant event (budget trips, fault injections…). Disarmed:
/// one relaxed load.
#[inline]
pub fn event(name: &Name, detail: Option<Symbol>, arg: u64) {
    if !armed() {
        return;
    }
    push(Event {
        name: name.symbol(),
        kind: EventKind::Instant,
        ts_ns: now_ns(),
        detail,
        arg,
    });
}

/// One thread's recorded trace.
#[derive(Clone)]
pub struct ThreadTrace {
    /// Thread name at ring creation (`main`, `worker-N`…).
    pub thread: String,
    /// Stable per-ring id (Chrome `tid`).
    pub tid: u64,
    /// Events in record order (monotonic `ts_ns` per thread).
    pub events: Vec<Event>,
    /// Events discarded past the [`MAX_EVENTS`] cap.
    pub dropped: u64,
}

/// Snapshots every thread ring (the published prefix of each; a quiescent
/// snapshot is exact). Threads with no events are omitted.
pub fn snapshot() -> Vec<ThreadTrace> {
    registry()
        .lock()
        .expect("ring registry poisoned")
        .iter()
        .map(|ring| ThreadTrace {
            thread: ring.thread_name.clone(),
            tid: ring.tid,
            events: ring.events(),
            dropped: ring.dropped.load(Ordering::Relaxed),
        })
        .filter(|t| !t.events.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Recorder state is process-global; tests in this binary serialize on
    // one mutex (the same pattern as the service chaos tests).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    static A: Name = Name::new("test.a");
    static B: Name = Name::new("test.b");

    fn my_events() -> Vec<Event> {
        RING.with(|r| r.events())
    }

    #[test]
    fn disarmed_spans_record_nothing() {
        let _gate = lock();
        reset();
        disarm();
        let before = my_events().len();
        {
            let mut g = span(&A);
            g.arg(7);
            event(&B, None, 0);
        }
        assert_eq!(my_events().len(), before);
    }

    #[test]
    fn armed_spans_nest_and_close_in_order() {
        let _gate = lock();
        reset();
        arm();
        {
            let mut outer = span(&A);
            outer.detail(&B);
            {
                let mut inner = span(&B);
                inner.arg(3);
            }
            event(&B, Some(A.symbol()), 9);
        }
        disarm();
        let events = my_events();
        assert_eq!(events.len(), 5);
        assert_eq!(
            events.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![
                EventKind::Open,
                EventKind::Open,
                EventKind::Close,
                EventKind::Instant,
                EventKind::Close,
            ]
        );
        assert_eq!(events[2].arg, 3);
        assert_eq!(events[4].detail, Some(B.symbol()));
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        reset();
    }

    #[test]
    fn rings_grow_across_chunks_and_cap_with_drop_counter() {
        let _gate = lock();
        reset();
        arm();
        let n = CHUNK * 2 + 17;
        for k in 0..n {
            event(&A, None, k as u64);
        }
        disarm();
        let events = my_events();
        assert_eq!(events.len(), n);
        assert!(events.iter().enumerate().all(|(k, e)| e.arg == k as u64));
        // The cap: force the writer cursor to the limit and observe drops.
        RING.with(|r| {
            r.len.store(MAX_EVENTS, Ordering::Relaxed);
            r.push(Event {
                name: A.symbol(),
                kind: EventKind::Instant,
                ts_ns: 0,
                detail: None,
                arg: 0,
            });
            assert_eq!(r.dropped.load(Ordering::Relaxed), 1);
            // Restore a consistent cursor before the shared reset.
            r.len.store(n, Ordering::Relaxed);
        });
        reset();
        assert!(my_events().is_empty());
    }

    #[test]
    fn snapshot_collects_spawned_thread_rings() {
        let _gate = lock();
        reset();
        arm();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _g = span(&B);
                });
            }
        });
        disarm();
        let snap = snapshot();
        let spawned: usize = snap
            .iter()
            .filter(|t| t.events.iter().any(|e| e.name == B.symbol()))
            .count();
        assert!(spawned >= 2, "expected >=2 worker rings, got {spawned}");
        reset();
    }
}
