//! `stng-obs`: the observability substrate of the lifting pipeline —
//! hierarchical spans, a metrics registry, and trace/metrics exporters.
//!
//! Three pieces, layered so the hot path stays cheap:
//!
//! * [`recorder`] — an always-compiled, **default-off** span recorder.
//!   Every worker thread records into its own lock-free append-only ring
//!   (chunked, no realloc, single-producer), so the scoped-thread CEGIS
//!   workers and prover sessions never contend. Disarmed, a span costs one
//!   relaxed atomic load; armed, two ring writes and two clock reads.
//! * [`metrics`] — named counters / time accumulators / gauges / histograms
//!   with pre-registered handles: registration hashes the name once, every
//!   increment after that is a plain atomic add on a dense cell. The
//!   per-kernel [`metrics::MetricSet`] is the aggregation unit `PhaseTimings`
//!   is derived from; flushing it feeds the process-wide totals.
//! * [`chrome`] — exporters: Chrome trace-event JSON (loadable in Perfetto /
//!   `chrome://tracing`, one track per recorded thread) and a machine-
//!   readable metrics snapshot.
//!
//! Span names are interned [`Symbol`]s. Symbols are **never swept** by the
//! epoch eviction in `stng-intern` (see `stng::memory`), so events captured
//! before an arena sweep still render correctly after it — the recorder
//! needs no coordination with memory management.
//!
//! ## Quiescence contract
//!
//! Rings are single-producer: only the owning thread pushes. Readers
//! ([`recorder::snapshot`]) may run concurrently — they observe the
//! published prefix — but [`recorder::reset`] and [`metrics::reset`] must
//! only run at quiescent points (no lift in flight), the same contract
//! `stng::memory::sweep` already imposes.

pub mod chrome;
pub mod metrics;
pub mod recorder;

pub use recorder::{arm, armed, disarm, event, span, Name, SpanGuard};

/// The span and event taxonomy: every name the pipeline records, in one
/// place (documented in `docs/observability.md`). Instrumentation sites use
/// these pre-interned names so the armed hot path never hashes a string.
pub mod names {
    use crate::recorder::Name;

    /// One candidate kernel through the whole pipeline (detail: kernel name).
    pub static LIFT_KERNEL: Name = Name::new("lift.kernel");
    /// Lowering a fragment to the kernel IR.
    pub static LIFT_LOWER: Name = Name::new("lift.lower");
    /// Canonicalization + structural fingerprint.
    pub static LIFT_FINGERPRINT: Name = Name::new("lift.fingerprint");
    /// Lifting-cache lookup (detail: `hit` / `miss`, including rehydration).
    pub static CACHE_LOOKUP: Name = Name::new("cache.lookup");
    /// One CEGIS candidate: VC generation, bounded screen, sound check
    /// (arg: candidate index).
    pub static CEGIS_CANDIDATE: Name = Name::new("cegis.candidate");
    /// Extended bounded-validation fallback.
    pub static CEGIS_VALIDATE: Name = Name::new("cegis.validate");
    /// Reachable-state capture (once per (kernel session, grid tier)).
    pub static BOUNDED_CAPTURE: Name = Name::new("bounded.capture");
    /// Scanning captured states against one candidate's VCs.
    pub static BOUNDED_SCAN: Name = Name::new("bounded.scan");
    /// One escalation rung of the adaptive bounded screen: capturing (when
    /// lazy-first-touch) and scanning one grid tier (arg: grid size).
    pub static BOUNDED_TIER: Name = Name::new("bounded.tier");
    /// The sound prover over one candidate's VC set.
    pub static PROVE_SESSION: Name = Name::new("prove.session");
    /// One `ProofSession::prove` obligation (detail: `memo_hit` /
    /// `memo_miss`, arg: remaining case-split depth).
    pub static PROVE_OBLIG: Name = Name::new("prove.oblig");
    /// Symbolic execution for template generation.
    pub static SYM_EXEC: Name = Name::new("sym.exec");
    /// VC generation for one candidate.
    pub static PRED_VCGEN: Name = Name::new("pred.vcgen");
    /// One `stng-verify` layer (detail: layer name).
    pub static VERIFY_LAYER: Name = Name::new("verify.layer");
    /// One `stng-verify` check or differential oracle (detail: check name).
    pub static VERIFY_CHECK: Name = Name::new("verify.check");

    /// Cache-lookup outcome details.
    pub static HIT: Name = Name::new("hit");
    pub static MISS: Name = Name::new("miss");
    /// Prove-obligation outcome details.
    pub static MEMO_HIT: Name = Name::new("memo_hit");
    pub static MEMO_MISS: Name = Name::new("memo_miss");

    /// Instant events (attached to the enclosing span's thread track).
    /// A budget limit tripped and the kernel degraded to bounded validation
    /// (detail: the `DegradeReason`).
    pub static BUDGET_DEGRADED: Name = Name::new("budget.degraded");
    /// A budget limit tripped hard: the kernel timed out (detail: reason).
    pub static BUDGET_TIMEOUT: Name = Name::new("budget.timeout");
    /// A fault-injection site fired (detail: which fault).
    pub static FAULT_INJECTED: Name = Name::new("fault.injected");
    /// A candidate worker panicked and was isolated.
    pub static WORKER_CRASHED: Name = Name::new("cegis.crashed");
}
