//! Regenerates Table 1: per-kernel Halide/auto-parallelizer/GPU speedups,
//! synthesis time, control bits, and postcondition AST nodes, plus the §6.3
//! aggregate (median / max / min Halide speedup) and the §6.4 portability
//! columns. Criterion additionally times the lifting of two representative
//! kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use stng_bench::{bench_stng, median, table1_row};
use stng_corpus::all_kernels;

fn print_table1() {
    let stng = bench_stng();
    let tune_budget = 4;
    println!("\n=== Table 1: overall lifting results (regenerated) ===");
    println!(
        "{:<12} {:<12} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9} {:>6} {:>6} {:>6}",
        "Suite",
        "Kernel",
        "Halide",
        "iccBef",
        "iccAft",
        "GPU",
        "GPU(noTx)",
        "Synth(s)",
        "Bits",
        "AST",
        "Sound"
    );
    let mut speedups = Vec::new();
    for corpus_kernel in all_kernels() {
        if let Some(row) = table1_row(&corpus_kernel, &stng, tune_budget) {
            println!(
                "{:<12} {:<12} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>10.2} {:>9.2} {:>6} {:>6} {:>6}",
                row.suite,
                row.kernel,
                row.halide_speedup,
                row.icc_before,
                row.icc_after,
                row.gpu_speedup,
                row.gpu_no_transfer,
                row.synth_time_s,
                row.control_bits,
                row.ast_nodes,
                if row.soundly_verified { "yes" } else { "bnd" }
            );
            speedups.push(row.halide_speedup);
        }
    }
    let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
    let min = speedups.iter().cloned().fold(f64::MAX, f64::min);
    println!("\n=== §6.3 aggregate ===");
    println!(
        "translated kernels: {}   median Halide speedup: {:.2}x   max: {:.2}x   min: {:.2}x",
        speedups.len(),
        median(&mut speedups),
        max,
        min
    );
    println!("(paper: median 4.1x, max 24x, min 1.84x on the authors' 24-core nodes)");
}

fn bench_lifting(c: &mut Criterion) {
    print_table1();
    let stng = bench_stng();
    let kernels = all_kernels();
    let mut group = c.benchmark_group("table1_lifting");
    group.sample_size(10);
    for name in ["akl83", "heat0"] {
        let corpus_kernel = kernels.iter().find(|k| k.name == name).unwrap().clone();
        group.bench_function(format!("lift_{name}"), |b| {
            b.iter(|| {
                let report = stng.lift_source(&corpus_kernel.source).unwrap();
                assert!(report.translated() >= 1);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lifting);
criterion_main!(benches);
