//! Regenerates the §6.5 de-optimization study: the modelled auto-parallelizing
//! compiler on the original hand-optimized challenge kernels versus on the
//! clean serial code regenerated from the lifted summaries.

use criterion::{criterion_group, criterion_main, Criterion};
use stng::pipeline::KernelOutcome;
use stng_bench::{bench_stng, lift, measure_original, performance_state};
use stng_corpus::{suite_kernels, Suite};
use stng_halide::codegen::serial_c;
use stng_ir::autopar::AutoParModel;

fn print_deopt_table() {
    let stng = bench_stng();
    let model = AutoParModel::default();
    println!("\n=== §6.5: lifting as de-optimization (regenerated) ===");
    println!(
        "{:<12} {:>16} {:>16} {:>14}",
        "Kernel", "icc on original", "icc on deopt", "deopt C lines"
    );
    for corpus_kernel in suite_kernels(Suite::Challenge) {
        let Some((report, kernel)) = lift(&corpus_kernel, &stng) else {
            continue;
        };
        let before = model.analyze(&kernel).speedup;
        let (after, c_lines) = match &report.outcome {
            KernelOutcome::Translated { summary, .. } => {
                // The regenerated code is a clean loop nest over the output
                // region: the model parallelizes it at full efficiency.
                let after = model.cores as f64 * model.efficiency
                    / (1.0 + model.overhead_fraction * model.cores as f64 * model.efficiency);
                let int_params = performance_state(&kernel, corpus_kernel.grid).ints.clone();
                let region = summary.region(0, &int_params).unwrap_or_default();
                let code = serial_c(&summary.funcs[0].0, &region);
                (after, code.lines().count())
            }
            // Untranslated (or budget-terminated, which the ungoverned bench
            // configuration never produces): the original code is all there
            // is, so the de-opt speedup equals the original's.
            KernelOutcome::Untranslated { .. }
            | KernelOutcome::Timeout { .. }
            | KernelOutcome::Crashed { .. } => (before, 0),
        };
        println!(
            "{:<12} {:>15.4}x {:>15.2}x {:>14}",
            corpus_kernel.name, before, after, c_lines
        );
    }
    println!("(paper: hand-optimized originals run ~10^4x slower under icc -parallel; regenerated code reaches ~9x)");
}

fn bench_deopt(c: &mut Criterion) {
    print_deopt_table();
    let stng = bench_stng();
    let kernels = suite_kernels(Suite::Challenge);
    let heat27 = kernels.iter().find(|k| k.name == "heat27").unwrap().clone();
    let mut group = c.benchmark_group("sec65_deopt");
    group.sample_size(10);
    let (_, kernel) = lift(&heat27, &stng).unwrap();
    let state = performance_state(&kernel, 12);
    group.bench_function("original_heat27_interpreted", |b| {
        b.iter(|| measure_original(&kernel, &state))
    });
    group.finish();
}

criterion_group!(benches, bench_deopt);
criterion_main!(benches);
