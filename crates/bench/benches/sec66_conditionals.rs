//! Regenerates the §6.6 study: how much conditional grammars inflate the
//! synthesis problem (data-dependent vs location-dependent conditions).

use criterion::{criterion_group, criterion_main, Criterion};
use stng_synth::conditional::{
    conditional_experiment, guarded_benchmark_kernel, ConditionalGrammar,
};

fn print_conditional_table() {
    println!("\n=== §6.6: impact of conditionals on synthesis (regenerated) ===");
    println!(
        "{:<20} {:>12} {:>16} {:>12}",
        "Grammar", "Time (ms)", "Candidates tried", "Control bits"
    );
    let mut times = Vec::new();
    for grammar in [
        ConditionalGrammar::LocationDependent,
        ConditionalGrammar::DataDependent,
    ] {
        let kernel = guarded_benchmark_kernel(grammar);
        let report = conditional_experiment(&kernel, grammar).expect("experiment runs");
        println!(
            "{:<20} {:>12.3} {:>16} {:>12}",
            format!("{grammar:?}"),
            report.elapsed.as_secs_f64() * 1e3,
            report.candidates_tried,
            report.control_bits.total()
        );
        times.push(report.elapsed.as_secs_f64());
    }
    if times.len() == 2 && times[0] > 0.0 {
        println!(
            "data-dependent / location-dependent slowdown: {:.1}x (paper: 6.5x vs 1.1x over the unconditional problem)",
            times[1] / times[0]
        );
    }
}

fn bench_conditionals(c: &mut Criterion) {
    print_conditional_table();
    let mut group = c.benchmark_group("sec66_conditionals");
    group.sample_size(10);
    for grammar in [
        ConditionalGrammar::LocationDependent,
        ConditionalGrammar::DataDependent,
    ] {
        let kernel = guarded_benchmark_kernel(grammar);
        group.bench_function(format!("{grammar:?}"), |b| {
            b.iter(|| {
                conditional_experiment(&kernel, grammar)
                    .unwrap()
                    .candidates_tried
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conditionals);
criterion_main!(benches);
