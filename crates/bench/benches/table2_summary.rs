//! Regenerates Table 2: per-suite counts of candidate loops, translated
//! kernels, untranslated stencils, and non-stencils.

use criterion::{criterion_group, criterion_main, Criterion};
use stng_bench::{bench_stng, table2_row};
use stng_corpus::{suite_kernels, Suite};

fn print_table2() {
    let stng = bench_stng();
    println!("\n=== Table 2: summary of lifted kernels (regenerated) ===");
    println!(
        "{:<12} {:>11} {:>11} {:>22} {:>13}",
        "Suite", "Candidates", "Translated", "Untranslated Stencils", "Non Stencils"
    );
    let mut total = stng_bench::Table2Row::default();
    for suite in Suite::all() {
        let row = table2_row(&suite_kernels(suite), &stng);
        println!(
            "{:<12} {:>11} {:>11} {:>22} {:>13}",
            suite.name(),
            row.candidates,
            row.translated,
            row.untranslated_stencils,
            row.non_stencils
        );
        total.candidates += row.candidates;
        total.translated += row.translated;
        total.untranslated_stencils += row.untranslated_stencils;
        total.non_stencils += row.non_stencils;
    }
    println!(
        "{:<12} {:>11} {:>11} {:>22} {:>13}",
        "Total",
        total.candidates,
        total.translated,
        total.untranslated_stencils,
        total.non_stencils
    );
    println!(
        "(paper totals: 93 candidates, 77 translated, 11 untranslated stencils, 5 non-stencils)"
    );
}

fn bench_identification(c: &mut Criterion) {
    print_table2();
    let kernels = suite_kernels(Suite::CloverLeaf);
    let mut group = c.benchmark_group("table2_summary");
    group.sample_size(10);
    group.bench_function("classify_cloverleaf_suite", |b| {
        b.iter(|| {
            let mut candidates = 0usize;
            for kernel in &kernels {
                let program = stng_ir::parser::parse_program(&kernel.source).unwrap();
                for proc in &program.procedures {
                    candidates += stng_ir::identify::identify_candidates(proc).len();
                }
            }
            candidates
        })
    });
    group.finish();
}

criterion_group!(benches, bench_identification);
criterion_main!(benches);
