//! Machine-readable benchmark emitter: lifts every corpus kernel, times the
//! end-to-end pipeline, and writes `BENCH_9.json` at the workspace root so
//! the performance trajectory is tracked from PR to PR.
//!
//! Usage:
//!
//! * `cargo bench --bench bench_json` — measures the current tree and writes
//!   `BENCH_9.json`. When `BENCH_baseline.json` exists at the workspace root,
//!   its numbers are embedded under `"baseline"` and an end-to-end speedup is
//!   computed.
//! * `BENCH_SAVE_BASELINE=1 cargo bench --bench bench_json` — additionally
//!   snapshots the measurements to `BENCH_baseline.json` (run this before a
//!   perf change to freeze the comparison point).
//!
//! Besides the per-kernel (uncached) timings, the run measures the
//! fingerprint-keyed lifting cache: a cold and a warm full-corpus batch pass
//! (`stng-service`), the warm hit rate, and **cache-hit parity** — a warm
//! hit must reproduce the cold pass's report exactly.
//!
//! The run doubles as the **regression gate**: every kernel recorded as
//! translated in the frozen `BENCH_8.json` (the previous PR's snapshot) must
//! still translate, the warm pass must hit on every lookup, parity must
//! hold, every soundly verified kernel's capture counter must respect lazy
//! tiered capture (never more than `grid_sizes × trials_per_size`, always a
//! whole number of tiers, and at least the smallest tier — reachable states
//! captured once per (session, tier) rather than once per candidate), the
//! whole corpus, lifted under an armed but generous budget (`bench_stng`
//! attaches one), must cost at most 5% over an ungoverned control pass
//! measured back to back in the same run (cross-snapshot wall-clock
//! comparisons drift with the shared host and are now informational only),
//! re-lifting the corpus with the span recorder **armed** must cost at most
//! 5% over the disarmed run (observability must stay close to free even
//! when switched on), and — new with the layered verification harness —
//! the full `stng-verify --quick` sweep must pass and finish within its
//! 30 s single-core wall budget, so the per-PR verification gate stays
//! cheap; otherwise the process exits non-zero, which fails the CI jobs.
//! The one-shot speedup gates from earlier snapshots (the compiled-proving
//! 1.5× prove-phase gate from BENCH_6, the adaptive bounded 1.5×
//! bounded-phase gate from BENCH_8) served their purpose and are retired;
//! both phases stay covered by the 5% total-time gate.
//!
//! The JSON is emitted by hand (no serde in the offline build environment);
//! the schema is flat and stable on purpose.

use std::fmt::Write as _;
use std::time::Instant;
use stng_bench::bench_stng;
use stng_corpus::all_kernels;
use stng_service::batch::{run_batch, BatchOptions};

/// One measured kernel.
struct KernelMeasurement {
    name: String,
    suite: &'static str,
    lift_ms: f64,
    translated: bool,
    soundly_verified: bool,
    cegis_iterations: usize,
    prover_attempts: usize,
    peak_candidates: usize,
    control_bits: usize,
    postcond_nodes: usize,
    capture_ms: f64,
    bounded_ms: f64,
    prove_ms: f64,
    captures: usize,
    oblig_hits: u64,
    oblig_misses: u64,
    core_hits: u64,
    screened: u64,
    survivors: u64,
    batch_scans: u64,
}

fn measure() -> (Vec<KernelMeasurement>, f64) {
    let stng = bench_stng();
    let mut rows = Vec::new();
    let mut total_ms = 0.0;
    for corpus_kernel in all_kernels() {
        // Three repetitions, keep the minimum: lifting is deterministic, so
        // the minimum is the least-noise estimate.
        let mut best_ms = f64::INFINITY;
        let mut report = None;
        for _ in 0..3 {
            let start = Instant::now();
            let r = stng.lift_source(&corpus_kernel.source);
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            best_ms = best_ms.min(elapsed);
            report = r.ok();
        }
        let first = report.as_ref().and_then(|r| r.kernels.first());
        let (translated, soundly, iters) = first
            .map(|k| {
                let (soundly, iters) = match &k.outcome {
                    stng::pipeline::KernelOutcome::Translated {
                        soundly_verified,
                        cegis_iterations,
                        ..
                    } => (*soundly_verified, *cegis_iterations),
                    _ => (false, 0),
                };
                (k.outcome.is_translated(), soundly, iters)
            })
            .unwrap_or((false, false, 0));
        let phase = first.map(|k| k.phase).unwrap_or_default();
        total_ms += best_ms;
        rows.push(KernelMeasurement {
            name: corpus_kernel.name.clone(),
            suite: corpus_kernel.suite.name(),
            lift_ms: best_ms,
            translated,
            soundly_verified: soundly,
            cegis_iterations: iters,
            prover_attempts: first.map(|k| k.prover_attempts).unwrap_or(0),
            peak_candidates: first.map(|k| k.peak_candidates).unwrap_or(0),
            control_bits: first.map(|k| k.control_bits.total()).unwrap_or(0),
            postcond_nodes: first.map(|k| k.postcond_nodes).unwrap_or(0),
            capture_ms: phase.capture_ms(),
            bounded_ms: phase.bounded_ms(),
            prove_ms: phase.prove_ms(),
            captures: phase.captures,
            oblig_hits: phase.oblig_hits,
            oblig_misses: phase.oblig_misses,
            core_hits: phase.core_hits,
            screened: phase.screened,
            survivors: phase.survivors,
            batch_scans: phase.batch_scans,
        });
    }
    (rows, total_ms)
}

/// Total corpus lift time with the null `Budget::unlimited()` handle —
/// the disarmed single-`Option`-check poll — under the same min-of-3
/// protocol as `measure`. This is the *within-run* control for the
/// governance-overhead gate: comparing against a frozen snapshot's total
/// conflates governance cost with host-speed drift (the shared
/// single-core VM varies by well over 5% between sessions), while the
/// governed/ungoverned ratio measured back to back on the same machine
/// state isolates exactly the bookkeeping the gate is about.
fn measure_ungoverned_total() -> f64 {
    let mut stng = bench_stng();
    stng.budget = stng::guard::Budget::unlimited();
    let mut total_ms = 0.0;
    for corpus_kernel in all_kernels() {
        let mut best_ms = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            let _ = stng.lift_source(&corpus_kernel.source);
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        }
        total_ms += best_ms;
    }
    total_ms
}

fn kernels_json(rows: &[KernelMeasurement]) -> String {
    let mut out = String::from("{");
    for (k, row) in rows.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        write!(
            out,
            "\n    \"{}\": {{\"suite\": \"{}\", \"lift_ms\": {:.3}, \"translated\": {}, \
             \"soundly_verified\": {}, \"cegis_iterations\": {}, \"prover_attempts\": {}, \
             \"peak_candidates\": {}, \"control_bits\": {}, \"postcond_nodes\": {}, \
             \"capture_ms\": {:.3}, \"bounded_ms\": {:.3}, \"prove_ms\": {:.3}, \
             \"captures\": {}, \"oblig_hits\": {}, \"oblig_misses\": {}, \
             \"core_hits\": {}, \"screened\": {}, \"survivors\": {}, \
             \"batch_scans\": {}}}",
            row.name,
            row.suite,
            row.lift_ms,
            row.translated,
            row.soundly_verified,
            row.cegis_iterations,
            row.prover_attempts,
            row.peak_candidates,
            row.control_bits,
            row.postcond_nodes,
            row.capture_ms,
            row.bounded_ms,
            row.prove_ms,
            row.captures,
            row.oblig_hits,
            row.oblig_misses,
            row.core_hits,
            row.screened,
            row.survivors,
            row.batch_scans,
        )
        .expect("writing to a String cannot fail");
    }
    out.push_str("\n  }");
    out
}

/// Extracts `"total_lift_ms": <number>` from a previously written snapshot.
fn parse_total(json: &str) -> Option<f64> {
    let key = "\"total_lift_ms\": ";
    let at = json.find(key)? + key.len();
    let rest = &json[at..];
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Names of the kernels recorded as translated in a previous snapshot (one
/// `"name": {… "translated": true …}` entry per line, as this emitter
/// writes them).
fn previously_lifting(json: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim_start();
        if !line.starts_with('"') || !line.contains("\"translated\": true") {
            continue;
        }
        if let Some(name) = line[1..].split('"').next() {
            out.push(name.to_string());
        }
    }
    out
}

/// Cold-vs-warm measurement of the fingerprint cache over the full corpus.
struct CacheMeasurement {
    cold_ms: f64,
    warm_ms: f64,
    warm_hit_rate: f64,
    /// Cache hits during the *cold* pass: the corpus's alpha-variant
    /// kernels deduplicating against their originals.
    cold_dedup_hits: u64,
    /// Every warm-pass report reproduced its cold-pass counterpart.
    parity: bool,
}

fn measure_cache() -> CacheMeasurement {
    let sources = stng_service::batch::corpus_sources();
    let options = BatchOptions {
        passes: 2,
        config: bench_stng().config,
        ..BatchOptions::default()
    };
    let report = run_batch(&sources, &options).expect("memory-only batch cannot fail on IO");
    let cold = &report.passes[0];
    let warm = &report.passes[1];
    let parity = cold.kernels.len() == warm.kernels.len()
        && cold
            .kernels
            .iter()
            .zip(&warm.kernels)
            .all(|(c, w)| c.report.outcome == w.report.outcome);
    CacheMeasurement {
        cold_ms: cold.wall_ms,
        warm_ms: warm.wall_ms,
        warm_hit_rate: warm.cache.hit_rate(),
        cold_dedup_hits: cold.cache.hits,
        parity,
    }
}

fn workspace_root() -> std::path::PathBuf {
    // benches run with the crate as cwd; the workspace root is two levels up.
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives at <root>/crates/bench")
        .to_path_buf()
}

/// Re-lifts the whole corpus with the span recorder armed and returns the
/// armed wall-clock total, for the observability-overhead gate. The ring is
/// reset first so the run cannot inherit a partially full buffer, and
/// disarmed (plus reset again) afterwards so later measurements are clean.
fn measure_armed() -> f64 {
    stng::obs::recorder::reset();
    if std::env::var("BENCH_OBS_DISARMED_CONTROL").is_err() {
        stng::obs::arm();
    }
    let (_, armed_total_ms) = measure();
    stng::obs::disarm();
    stng::obs::recorder::reset();
    armed_total_ms
}

fn main() {
    let root = workspace_root();
    let (rows, total_ms) = measure();
    let ungoverned_total_ms = measure_ungoverned_total();
    let gov_overhead = total_ms / ungoverned_total_ms;
    println!(
        "governance: ungoverned {ungoverned_total_ms:.1} ms -> governed {total_ms:.1} ms \
         ({:.1}% overhead)",
        (gov_overhead - 1.0) * 100.0
    );

    let snapshot = format!(
        "{{\n  \"schema\": 1,\n  \"total_lift_ms\": {:.3},\n  \"translated\": {},\n  \"kernels\": {}\n}}\n",
        total_ms,
        rows.iter().filter(|r| r.translated).count(),
        kernels_json(&rows)
    );

    if std::env::var("BENCH_SAVE_BASELINE").is_ok() {
        std::fs::write(root.join("BENCH_baseline.json"), &snapshot)
            .expect("BENCH_baseline.json is writable");
        println!("wrote BENCH_baseline.json (total {total_ms:.1} ms)");
    }

    let cache = measure_cache();
    println!(
        "cache: cold {:.1} ms -> warm {:.1} ms ({:.1}x), warm hit rate {:.1}%, \
         {} cold dedup hit(s), parity {}",
        cache.cold_ms,
        cache.warm_ms,
        cache.cold_ms / cache.warm_ms,
        cache.warm_hit_rate * 100.0,
        cache.cold_dedup_hits,
        if cache.parity { "ok" } else { "BROKEN" },
    );

    let armed_total_ms = measure_armed();
    let obs_overhead = armed_total_ms / total_ms;
    println!(
        "observability: disarmed {total_ms:.1} ms -> armed {armed_total_ms:.1} ms \
         ({:.1}% overhead)",
        (obs_overhead - 1.0) * 100.0
    );

    // Layered verification, quick tier (docs/verification.md). Runs after
    // every timing measurement above on purpose: Layer 1 sweeps the global
    // Fourier–Motzkin memo tables via `retain_epoch`, which would perturb
    // the warm-state numbers if it ran earlier.
    let verify_start = Instant::now();
    let verify_report = stng_verify::run(&stng_verify::Options::default());
    let verify_s = verify_start.elapsed().as_secs_f64();
    println!(
        "verification: stng-verify --quick ran {} cases ({} failures) in {verify_s:.1} s",
        verify_report.total_cases(),
        verify_report.total_failures()
    );

    let baseline = std::fs::read_to_string(root.join("BENCH_baseline.json")).ok();
    let mut out = String::from("{\n  \"schema\": 1,\n");
    write!(
        out,
        "  \"total_lift_ms\": {:.3},\n  \"translated\": {},\n  \"kernels\": {},\n",
        total_ms,
        rows.iter().filter(|r| r.translated).count(),
        kernels_json(&rows)
    )
    .expect("writing to a String cannot fail");
    // Phase breakdown: where checking time goes across the whole corpus,
    // plus the compiled-proving counters (obligation memo and learned-core
    // hits) that explain the prove column.
    let (cap_total, bounded_total, prove_total): (f64, f64, f64) =
        rows.iter().fold((0.0, 0.0, 0.0), |(c, b, p), r| {
            (c + r.capture_ms, b + r.bounded_ms, p + r.prove_ms)
        });
    let (hits_total, misses_total, cores_total) = rows.iter().fold((0, 0, 0), |(h, m, c), r| {
        (h + r.oblig_hits, m + r.oblig_misses, c + r.core_hits)
    });
    let memo_rate = hits_total as f64 / (hits_total + misses_total).max(1) as f64;
    let (screened_total, survivors_total, bscans_total) =
        rows.iter().fold((0, 0, 0), |(s, v, b), r| {
            (s + r.screened, v + r.survivors, b + r.batch_scans)
        });
    writeln!(
        out,
        "  \"phases\": {{\"capture_ms\": {cap_total:.3}, \"bounded_ms\": {bounded_total:.3}, \
         \"prove_ms\": {prove_total:.3}, \"oblig_hits\": {hits_total}, \
         \"oblig_misses\": {misses_total}, \"core_hits\": {cores_total}, \
         \"screened\": {screened_total}, \"survivors\": {survivors_total}, \
         \"batch_scans\": {bscans_total}}},",
    )
    .expect("writing to a String cannot fail");
    println!(
        "phase breakdown: capture {cap_total:.1} ms, bounded check {bounded_total:.1} ms, \
         prove {prove_total:.1} ms (of {total_ms:.1} ms total)"
    );
    println!(
        "prover memo: {hits_total} hits / {misses_total} misses ({:.1}% hit rate), \
         {cores_total} learned-core short-circuits",
        memo_rate * 100.0
    );
    println!(
        "bounded screen: {screened_total} candidates screened, {survivors_total} survived \
         to the prover ({:.1}% killed), {bscans_total} batched sweeps",
        (1.0 - survivors_total as f64 / (screened_total as f64).max(1.0)) * 100.0
    );
    writeln!(
        out,
        "  \"cache\": {{\"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"warm_speedup\": {:.1}, \
         \"warm_hit_rate\": {:.4}, \"cold_dedup_hits\": {}, \"parity\": {}}},",
        cache.cold_ms,
        cache.warm_ms,
        cache.cold_ms / cache.warm_ms,
        cache.warm_hit_rate,
        cache.cold_dedup_hits,
        cache.parity,
    )
    .expect("writing to a String cannot fail");
    writeln!(
        out,
        "  \"obs\": {{\"disarmed_total_ms\": {total_ms:.3}, \
         \"armed_total_ms\": {armed_total_ms:.3}, \"overhead_ratio\": {obs_overhead:.4}}},",
    )
    .expect("writing to a String cannot fail");
    writeln!(
        out,
        "  \"governance\": {{\"ungoverned_total_ms\": {ungoverned_total_ms:.3}, \
         \"governed_total_ms\": {total_ms:.3}, \"overhead_ratio\": {gov_overhead:.4}}},",
    )
    .expect("writing to a String cannot fail");
    writeln!(
        out,
        "  \"verify\": {{\"quick_wall_s\": {verify_s:.3}, \"cases\": {}, \"failures\": {}}},",
        verify_report.total_cases(),
        verify_report.total_failures()
    )
    .expect("writing to a String cannot fail");
    if let Some(base) = &baseline {
        let base_total = parse_total(base).unwrap_or(f64::NAN);
        write!(
            out,
            "  \"baseline_total_lift_ms\": {:.3},\n  \"speedup_vs_baseline\": {:.3},\n",
            base_total,
            base_total / total_ms
        )
        .expect("writing to a String cannot fail");
        println!(
            "end-to-end lifting: {total_ms:.1} ms vs baseline {base_total:.1} ms \
             ({:.2}x speedup)",
            base_total / total_ms
        );
    } else {
        println!("end-to-end lifting: {total_ms:.1} ms (no baseline snapshot found)");
    }
    out.push_str("  \"source\": \"cargo bench --bench bench_json\"\n}\n");
    std::fs::write(root.join("BENCH_9.json"), out).expect("BENCH_9.json is writable");
    println!("wrote BENCH_9.json");

    let mut failed = false;
    // Regression gates against the previous PR's frozen snapshot:
    // everything that lifted must still lift. The cross-snapshot total is
    // reported for the trajectory but is *informational*: the shared
    // single-core host drifts by well over 5% between sessions, so
    // wall-clock totals are only comparable within one run. (Both overhead
    // gates — observability and governance — are within-run ratios for
    // exactly this reason.)
    if let Ok(prior) = std::fs::read_to_string(root.join("BENCH_8.json")) {
        let must_lift = previously_lifting(&prior);
        let regressed: Vec<&String> = must_lift
            .iter()
            .filter(|name| !rows.iter().any(|r| &&r.name == name && r.translated))
            .collect();
        if !regressed.is_empty() {
            eprintln!(
                "LIFTING REGRESSION: previously-lifting kernels no longer lift: {regressed:?}"
            );
            failed = true;
        } else {
            println!(
                "lifting regression gate: all {} previously-lifting kernels still lift",
                must_lift.len()
            );
        }
        if let Some(prior_total) = parse_total(&prior) {
            println!(
                "cross-snapshot drift (informational): governed corpus {total_ms:.1} ms vs \
                 prior snapshot's {prior_total:.1} ms ({:+.1}%)",
                (total_ms / prior_total - 1.0) * 100.0
            );
        }
        // The adaptive bounded 1.5× bounded-phase gate from BENCH_8 is
        // retired here, following the BENCH_6 prove-phase precedent: a
        // one-shot speedup gate proves the optimization landed, then turns
        // into a flakiness source once the win is banked. The bounded phase
        // stays covered by the governance-overhead ratio gate below.
    }
    // Governance-overhead gate: lifting the corpus under an armed (but
    // generous) budget must cost at most 5% over the same corpus lifted
    // with the null unlimited budget, measured back to back in this run.
    // This is the disarmed-poll-is-free contract from docs/robustness.md.
    if gov_overhead > 1.05 {
        eprintln!(
            "GOVERNANCE OVERHEAD REGRESSION: governed corpus took {total_ms:.1} ms \
             > 105% of the ungoverned control's {ungoverned_total_ms:.1} ms"
        );
        failed = true;
    } else {
        println!(
            "governance overhead gate: governed corpus {total_ms:.1} ms within 5% \
             of ungoverned {ungoverned_total_ms:.1} ms"
        );
    }
    // Observability-overhead gate: the armed recorder must cost at most 5%
    // over the disarmed run. This is the always-compiled-tracing contract —
    // span recording stays cheap enough to switch on in production batches.
    if armed_total_ms > total_ms * 1.05 {
        eprintln!(
            "OBSERVABILITY OVERHEAD REGRESSION: armed corpus took {armed_total_ms:.1} ms \
             > 105% of the disarmed run's {total_ms:.1} ms"
        );
        failed = true;
    } else {
        println!(
            "observability overhead gate: armed corpus {armed_total_ms:.1} ms within 5% \
             of disarmed {total_ms:.1} ms"
        );
    }
    // Cache gate: a warm full-corpus pass must hit on every lookup and
    // reproduce the cold reports exactly.
    if cache.warm_hit_rate < 1.0 {
        eprintln!(
            "CACHE REGRESSION: warm hit rate {:.1}% < 100%",
            cache.warm_hit_rate * 100.0
        );
        failed = true;
    }
    if !cache.parity {
        eprintln!("CACHE REGRESSION: a warm hit did not reproduce the cold report");
        failed = true;
    }
    // Capture-reuse gate: every soundly verified kernel went through the
    // CEGIS check session, which captures tiers lazily but each tier at most
    // once. The counter must therefore never exceed the full
    // `grid_sizes × trials_per_size` product, always be a whole number of
    // tiers, and include at least the smallest tier (which every screened
    // candidate touches). A drifting counter means the per-(session, tier)
    // reuse invariant silently regressed to per-candidate capture.
    let bounded = bench_stng().config.bounded;
    let max_captures = bounded.grid_sizes.len() * bounded.trials_per_size;
    let tier = bounded.trials_per_size;
    let bad_captures: Vec<String> = rows
        .iter()
        .filter(|r| r.translated && r.soundly_verified && r.peak_candidates > 0)
        .filter(|r| r.captures > max_captures || r.captures < tier || r.captures % tier != 0)
        .map(|r| {
            format!(
                "{} (captures {}, expected a multiple of {tier} in {tier}..={max_captures})",
                r.name, r.captures
            )
        })
        .collect();
    if bad_captures.is_empty() {
        println!(
            "capture-reuse gate: every soundly verified kernel captured whole tiers at \
             most once each (multiples of {tier}, <= {max_captures}, smallest tier always)"
        );
    } else {
        eprintln!("CAPTURE-REUSE REGRESSION: {bad_captures:?}");
        failed = true;
    }
    // Verification-cost gate: the quick tier of the layered soundness
    // harness is the per-PR CI gate (`verify-quick`), so it must both pass
    // and stay cheap — within a 30 s single-core wall budget. A sweep that
    // silently grows past that stops being a gate anyone waits for.
    if verify_report.total_failures() > 0 {
        eprintln!(
            "VERIFICATION REGRESSION: stng-verify --quick reported {} failure(s) \
             across {} cases",
            verify_report.total_failures(),
            verify_report.total_cases()
        );
        failed = true;
    }
    if verify_s > 30.0 {
        eprintln!(
            "VERIFICATION COST REGRESSION: stng-verify --quick took {verify_s:.1} s \
             > its 30 s single-core wall budget"
        );
        failed = true;
    } else if verify_report.total_failures() == 0 {
        println!(
            "verification cost gate: stng-verify --quick passed {} cases in \
             {verify_s:.1} s (gate <= 30 s)",
            verify_report.total_cases()
        );
    }
    if failed {
        std::process::exit(1);
    }
}
