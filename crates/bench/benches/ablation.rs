//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! inductive template generation (observation-driven hole solving) versus a
//! blind grammar search bound, and the cost of the sound verification stage
//! relative to bounded checking.

use criterion::{criterion_group, criterion_main, Criterion};
use stng_bench::bench_stng;
use stng_corpus::all_kernels;
use stng_ir::lower::kernel_from_source;
use stng_pred::fixtures;
use stng_pred::vcgen::{analyze_loop_nest, generate_vcs};
use stng_solve::{BoundedChecker, SmtLite};
use stng_synth::postcond::PostcondSynthesizer;

fn print_ablation() {
    println!("\n=== Ablation: inductive templates and verification stages ===");
    // 1. Template-driven search-space size vs the unconstrained grammar.
    let kernels = all_kernels();
    let heat27 = kernels.iter().find(|k| k.name == "heat27").unwrap();
    let kernel = kernel_from_source(&heat27.source, 0).unwrap();
    let candidate = PostcondSynthesizer::new().synthesize(&kernel).unwrap();
    let template_bits = candidate.control_bits.total();
    // Without templates the synthesizer would have to pick, for every one of
    // the 27 reads, an arbitrary term from the grammar (array × 3 index
    // expressions × offsets) plus a weight — a conservative lower bound on
    // the blind encoding.
    let blind_bits = 27 * (3 * 4 + 8) + 3 * 4;
    println!(
        "heat27 search space: {template_bits} control bits with inductive templates vs >= {blind_bits} without"
    );

    // 2. Bounded checking vs sound verification on the running example.
    let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
    let nest = analyze_loop_nest(&kernel).unwrap();
    let vcs = generate_vcs(
        &nest,
        &kernel.assumptions,
        &fixtures::running_example_invariants(),
        &fixtures::running_example_post(),
    );
    let bounded = BoundedChecker::new();
    let t0 = std::time::Instant::now();
    let cex = bounded.find_counterexample(&kernel, &vcs).unwrap();
    let bounded_time = t0.elapsed();
    let prover = SmtLite::new();
    let t1 = std::time::Instant::now();
    let verdict = prover.verify_all(&vcs);
    let prover_time = t1.elapsed();
    println!(
        "running example: bounded check clean={} in {:.3}ms, sound proof valid={} in {:.3}ms",
        cex.is_none(),
        bounded_time.as_secs_f64() * 1e3,
        verdict.is_valid(),
        prover_time.as_secs_f64() * 1e3
    );
}

fn bench_ablation(c: &mut Criterion) {
    print_ablation();
    let stng = bench_stng();
    let kernels = all_kernels();
    let akl83 = kernels.iter().find(|k| k.name == "akl83").unwrap().clone();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("postcondition_only_akl83", |b| {
        let kernel = kernel_from_source(&akl83.source, 0).unwrap();
        b.iter(|| PostcondSynthesizer::new().synthesize(&kernel).unwrap().post)
    });
    group.bench_function("full_pipeline_akl83", |b| {
        b.iter(|| stng.lift_source(&akl83.source).unwrap().translated())
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
