//! Shared measurement harness for the benchmark suite: everything needed to
//! regenerate the paper's tables from the corpus.
//!
//! The binaries under `benches/` print the regenerated tables and use
//! Criterion to time representative kernels; the heavy lifting (pun intended)
//! lives here so integration tests can reuse it.

use std::collections::HashMap;
use std::time::{Duration, Instant};
use stng::pipeline::{KernelOutcome, KernelReport, Stng};
use stng::translate::StencilSummary;
use stng_corpus::CorpusKernel;
use stng_halide::autotune::Autotuner;
use stng_halide::buffer::Buffer;
use stng_halide::gpu::GpuModel;
use stng_halide::schedule::{realize, Schedule};
use stng_ir::autopar::AutoParModel;
use stng_ir::interp::{run_kernel, ArrayData, State};
use stng_ir::ir::{Kernel, ParamKind};
use stng_sym::choose_small_bounds;

/// One row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Suite name.
    pub suite: &'static str,
    /// Kernel name.
    pub kernel: String,
    /// Speedup of tuned mini-Halide over the original interpreter.
    pub halide_speedup: f64,
    /// Modelled auto-parallelizing-compiler speedup on the original code.
    pub icc_before: f64,
    /// Modelled auto-parallelizing-compiler speedup on the regenerated code.
    pub icc_after: f64,
    /// Modelled GPU speedup including transfers.
    pub gpu_speedup: f64,
    /// Modelled GPU speedup excluding transfers.
    pub gpu_no_transfer: f64,
    /// Synthesis time in seconds.
    pub synth_time_s: f64,
    /// Control bits of the synthesis encoding.
    pub control_bits: usize,
    /// Postcondition AST nodes.
    pub ast_nodes: usize,
    /// Whether the summary carries a full soundness proof.
    pub soundly_verified: bool,
}

/// Aggregate classification counts for one suite (Table 2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table2Row {
    /// Loops flagged as candidates.
    pub candidates: usize,
    /// Candidates successfully lifted.
    pub translated: usize,
    /// Candidates that are stencils but failed to lift.
    pub untranslated_stencils: usize,
    /// Candidates that are not stencils (and failed to lift).
    pub non_stencils: usize,
}

/// Lifts a corpus kernel and returns its report (first candidate fragment).
pub fn lift(corpus_kernel: &CorpusKernel, stng: &Stng) -> Option<(KernelReport, Kernel)> {
    let report = stng.lift_source(&corpus_kernel.source).ok()?;
    let kernel_report = report.kernels.into_iter().next()?;
    let kernel = kernel_report.kernel.clone()?;
    Some((kernel_report, kernel))
}

/// Builds an f64 machine state for a kernel at the given grid size, with
/// deterministic pseudo-random contents.
pub fn performance_state(kernel: &Kernel, grid: i64) -> State<f64> {
    let bounds = choose_small_bounds(kernel, grid);
    let mut state: State<f64> = State::new();
    for (name, value) in &bounds {
        state.set_int(name.clone(), *value);
    }
    for (k, name) in kernel.real_params().into_iter().enumerate() {
        state.set_real(name, 0.5 + 0.25 * k as f64);
    }
    for param in &kernel.params {
        if let ParamKind::Array { dims } = &param.kind {
            let mut concrete = Vec::new();
            for (lo, hi) in dims {
                let lo = stng_ir::interp::eval_int_expr(lo, &state).expect("bound evaluates");
                let hi = stng_ir::interp::eval_int_expr(hi, &state).expect("bound evaluates");
                concrete.push((lo, hi));
            }
            let array = ArrayData::from_fn(concrete, |idx| {
                let mut h = 1.0f64;
                for (d, v) in idx.iter().enumerate() {
                    h += (*v as f64) * 0.37 * (d as f64 + 1.0);
                }
                (h * 1103.5).sin() * 0.5 + 1.0
            });
            state.set_array(param.name.clone(), array);
        }
    }
    state
}

/// Measures the original kernel (the "gfortran" baseline of Table 1): one
/// interpreted execution over the performance state.
pub fn measure_original(kernel: &Kernel, state: &State<f64>) -> Duration {
    let mut run_state = state.clone();
    let start = Instant::now();
    run_kernel(kernel, &mut run_state).expect("original kernel executes");
    let elapsed = start.elapsed();
    std::hint::black_box(run_state);
    elapsed.max(Duration::from_micros(1))
}

/// Measures the lifted summary under a tuned schedule and returns the wall
/// time together with the modelled GPU execution.
pub fn measure_halide(
    summary: &StencilSummary,
    kernel: &Kernel,
    state: &State<f64>,
    tune_budget: usize,
) -> (Duration, Duration, Duration) {
    let int_params: HashMap<String, i64> = state.ints.clone();
    let params: HashMap<String, f64> = state.reals.clone();
    let mut total = Duration::ZERO;
    let mut gpu_total = Duration::ZERO;
    let mut gpu_kernel_only = Duration::ZERO;
    let gpu = GpuModel::default();
    for (k, (func, _)) in summary.funcs.iter().enumerate() {
        let region = summary
            .region(k, &int_params)
            .expect("region evaluates from the kernel's integer parameters");
        // Inputs: every image the function reads, taken from the state.
        let mut buffers: HashMap<String, Buffer> = HashMap::new();
        for image in func.expr.images() {
            let arr = state.array(&image).expect("input array bound");
            let origin: Vec<i64> = arr.dims.iter().map(|d| d.0).collect();
            let extent: Vec<usize> = arr.dims.iter().map(|d| (d.1 - d.0 + 1) as usize).collect();
            let buffer = Buffer {
                step: vec![1; origin.len()],
                origin,
                extent,
                data: arr.data.clone(),
            };
            buffers.insert(image, buffer);
        }
        let inputs: HashMap<String, &Buffer> =
            buffers.iter().map(|(k, v)| (k.clone(), v)).collect();
        let schedule = if tune_budget > 0 {
            Autotuner::with_budget(tune_budget)
                .tune(func, &region, &inputs, &params)
                .best
        } else {
            Schedule::default_tuned(func.rank, 4)
        };
        let start = Instant::now();
        let out = realize(func, &schedule, &region, &inputs, &params);
        total += start.elapsed();
        let points = out.len();
        std::hint::black_box(out);
        let gpu_run = gpu.run(func, points, &inputs);
        gpu_total += gpu_run.total();
        gpu_kernel_only += gpu_run.kernel_time;
    }
    let _ = kernel;
    (
        total.max(Duration::from_micros(1)),
        gpu_total.max(Duration::from_nanos(1)),
        gpu_kernel_only.max(Duration::from_nanos(1)),
    )
}

/// Produces one Table 1 row for a corpus kernel, or `None` when the kernel
/// does not lift (such kernels appear in Table 2 only).
pub fn table1_row(
    corpus_kernel: &CorpusKernel,
    stng: &Stng,
    tune_budget: usize,
) -> Option<Table1Row> {
    let (report, kernel) = lift(corpus_kernel, stng)?;
    let KernelOutcome::Translated {
        summary,
        soundly_verified,
        ..
    } = &report.outcome
    else {
        return None;
    };
    let state = performance_state(&kernel, corpus_kernel.grid);
    let original = measure_original(&kernel, &state);
    let (halide, gpu_total, gpu_kernel) = measure_halide(summary, &kernel, &state, tune_budget);

    let autopar = AutoParModel::default();
    let before = autopar.analyze(&kernel).speedup;
    // The regenerated code is a clean, perfectly-nested loop over the output
    // region: the modelled compiler always parallelizes it.
    let clean_outcome = AutoParModel::default();
    let after = clean_outcome.cores as f64 * clean_outcome.efficiency
        / (1.0
            + clean_outcome.overhead_fraction
                * clean_outcome.cores as f64
                * clean_outcome.efficiency);

    Some(Table1Row {
        suite: corpus_kernel.suite.name(),
        kernel: corpus_kernel.name.clone(),
        halide_speedup: original.as_secs_f64() / halide.as_secs_f64(),
        icc_before: before,
        icc_after: after,
        gpu_speedup: original.as_secs_f64() / gpu_total.as_secs_f64(),
        gpu_no_transfer: original.as_secs_f64() / gpu_kernel.as_secs_f64(),
        synth_time_s: report.synthesis_time.as_secs_f64(),
        control_bits: report.control_bits.total(),
        ast_nodes: report.postcond_nodes,
        soundly_verified: *soundly_verified,
    })
}

/// Classifies every kernel of a suite for Table 2.
pub fn table2_row(kernels: &[CorpusKernel], stng: &Stng) -> Table2Row {
    let mut row = Table2Row::default();
    for corpus_kernel in kernels {
        let Ok(report) = stng.lift_source(&corpus_kernel.source) else {
            continue;
        };
        for kernel_report in &report.kernels {
            row.candidates += 1;
            if kernel_report.outcome.is_translated() {
                row.translated += 1;
            } else if corpus_kernel.is_stencil {
                row.untranslated_stencils += 1;
            } else {
                row.non_stencils += 1;
            }
        }
    }
    row
}

/// Median of a slice (used for the §6.3 aggregate).
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = values.len() / 2;
    if values.len().is_multiple_of(2) {
        (values[mid - 1] + values[mid]) / 2.0
    } else {
        values[mid]
    }
}

/// A fast synthesis configuration used by benches (smaller proof budgets than
/// the library defaults; kernels that exceed them fall back to bounded
/// validation and are reported as such).
///
/// The returned pipeline carries a deliberately generous — but *armed* —
/// resource budget (an hour of wall clock, counters far beyond any corpus
/// kernel), so every benchmark run exercises the real governed code paths
/// (polls, fuel accounting) instead of the null unlimited budget. The
/// `bench_json` gate holds the cost of that bookkeeping under 5% of an
/// ungoverned control pass measured in the same run.
pub fn bench_stng() -> Stng {
    let mut stng = Stng::new();
    stng.config.prover.max_attempts = 1500;
    stng.config.prover.max_split_depth = 6;
    stng.budget = stng::guard::Budget::limited(
        Some(Duration::from_secs(3600)),
        Some(1 << 40),
        Some(1 << 60),
    );
    stng
}

#[cfg(test)]
mod tests {
    use super::*;
    use stng_corpus::{suite_kernels, Suite};

    #[test]
    fn table1_row_for_a_stencilmark_kernel_has_sane_shape() {
        let kernels = suite_kernels(Suite::StencilMark);
        let heat = kernels.iter().find(|k| k.name == "heat0").unwrap();
        let row = table1_row(heat, &bench_stng(), 0).expect("heat0 lifts");
        assert!(row.halide_speedup > 0.0);
        assert!(row.gpu_no_transfer >= row.gpu_speedup);
        assert!(row.ast_nodes > 20);
    }

    #[test]
    fn median_handles_even_and_odd_lengths() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }
}
