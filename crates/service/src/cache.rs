//! The two-tier, fingerprint-keyed lifting-result cache.
//!
//! **Key**: the 128-bit structural fingerprint of the lowered kernel
//! (`stng_ir::canon`) plus a 64-bit digest of the synthesis configuration —
//! two kernels share an entry iff they are alpha-equivalent *and* would be
//! lifted with identical settings.
//!
//! **Tier 1** is a sharded in-memory LRU: lock striping keeps concurrent
//! batch workers off each other's shards, and each shard evicts its
//! least-recently-used entry past capacity. **Tier 2** is an optional
//! on-disk store, one JSON document per entry (`<fingerprint>-<config>.json`
//! under the cache directory), written atomically via a temp file + rename;
//! a memory miss probes the disk and promotes the entry.
//!
//! Entries store the synthesized postcondition in **canonical** symbol
//! names. On a hit the inverse rename map of the *requesting* kernel
//! rewrites it back, and the mini-Halide summary is rebuilt
//! deterministically from the renamed postcondition — so a renamed
//! duplicate of `heat0` gets a report in its own vocabulary, and a warm hit
//! for the original reproduces the cold report exactly (the bench parity
//! gate checks this on every run).
//!
//! **Disk hardening**: every on-disk entry is a checksum line (fnv1a64 of
//! the JSON body, 16 hex digits) followed by the body. A file that fails
//! the checksum, fails to parse, or carries the wrong schema is
//! **quarantined** — renamed aside as `.json.quarantined` so the evidence
//! survives for inspection — counted, and treated as a miss; the next
//! store writes a fresh entry under the original name. Transient read
//! errors are retried with bounded exponential backoff before degrading to
//! a miss, and orphaned `.json.tmp` files (crashes mid-write) are swept on
//! open. See `docs/robustness.md`.

use crate::codec::{decode_entry, encode_entry, CachedLift};
use crate::json::Json;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use stng::pipeline::{KernelOutcome, KernelReport, LiftCache};
use stng::translate::StencilSummary;
use stng_intern::guard::fault;
use stng_ir::canon::{self, Canon};
use stng_ir::ir::Kernel;
use stng_pred::lang::{Postcondition, QuantClause};
use stng_synth::cegis::SynthesisConfig;

/// Number of lock-striped shards of the in-memory tier.
const SHARDS: usize = 8;

/// Registry mirrors of [`CacheStats`]: the same increments feed both, so
/// `stng-batch --metrics-json` reports the cache through the one metrics
/// aggregation point while per-instance metering keeps going through
/// [`LiftResultCache::stats`] / [`CacheStats::since`].
mod obs_counters {
    use stng_obs::metrics::Lazy;
    pub static HITS: Lazy = Lazy::counter("cache.hits");
    pub static MISSES: Lazy = Lazy::counter("cache.misses");
    pub static DISK_HITS: Lazy = Lazy::counter("cache.disk_hits");
    pub static INSERTS: Lazy = Lazy::counter("cache.inserts");
    pub static EVICTIONS: Lazy = Lazy::counter("cache.evictions");
    pub static DISK_WRITES: Lazy = Lazy::counter("cache.disk_writes");
    pub static QUARANTINED: Lazy = Lazy::counter("cache.quarantined");
    pub static ORPHANS_SWEPT: Lazy = Lazy::counter("cache.orphans_swept");
    pub static IO_RETRIES: Lazy = Lazy::counter("cache.io_retries");
}

/// Cache key: structural fingerprint + pipeline-configuration digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Kernel fingerprint (see [`stng_ir::canon::canonicalize`]).
    pub fingerprint: u128,
    /// Digest of the synthesis configuration.
    pub config: u64,
}

impl CacheKey {
    fn file_stem(&self) -> String {
        format!("{:032x}-{:016x}", self.fingerprint, self.config)
    }
}

/// Digest of a [`SynthesisConfig`]: a hash of its complete `Debug`
/// rendering, so *any* knob change (proof budgets, validation sizes,
/// parallelism is excluded — see below) separates cache entries.
///
/// `parallelism` fields are masked out first: thread counts change wall
/// time, never results (the parallel CEGIS scan is deterministic by
/// construction), so reports are shareable across differently-threaded
/// hosts.
pub fn config_digest(config: &SynthesisConfig) -> u64 {
    let mut canonical = config.clone();
    canonical.parallelism = 1;
    canonical.postcond.parallelism = 1;
    canonical.bounded.parallelism = 1;
    canon::fnv1a64(format!("{canonical:?}").as_bytes(), 0xcbf2_9ce4_8422_2325)
}

/// Monotonic counters of one cache instance. Snapshot via
/// [`LiftResultCache::stats`]; subtract snapshots to meter one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered (memory or disk).
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Hits served by the disk tier (subset of `hits`).
    pub disk_hits: u64,
    /// Entries inserted into the memory tier.
    pub inserts: u64,
    /// Entries evicted from the memory tier by LRU pressure.
    pub evictions: u64,
    /// Entries persisted to the disk tier.
    pub disk_writes: u64,
    /// Corrupt/stale disk entries renamed aside (`.json.quarantined`).
    pub quarantined: u64,
    /// Orphaned `.json.tmp` files removed when the disk tier was opened.
    pub orphans_swept: u64,
    /// Transient disk-read failures that were retried.
    pub io_retries: u64,
}

impl CacheStats {
    /// Counter-wise difference (`self - earlier`).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            disk_hits: self.disk_hits - earlier.disk_hits,
            inserts: self.inserts - earlier.inserts,
            evictions: self.evictions - earlier.evictions,
            disk_writes: self.disk_writes - earlier.disk_writes,
            quarantined: self.quarantined - earlier.quarantined,
            orphans_swept: self.orphans_swept - earlier.orphans_swept,
            io_retries: self.io_retries - earlier.io_retries,
        }
    }

    /// Fraction of lookups that hit, in `[0, 1]`; 1.0 when there were none.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct MemEntry {
    payload: Arc<CachedLift>,
    tick: u64,
}

/// The two-tier store (keying and eviction only; report rehydration lives
/// in [`PipelineCache`]).
pub struct LiftResultCache {
    shards: Vec<Mutex<HashMap<CacheKey, MemEntry>>>,
    per_shard_capacity: usize,
    disk_dir: Option<PathBuf>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    disk_writes: AtomicU64,
    quarantined: AtomicU64,
    orphans_swept: AtomicU64,
    io_retries: AtomicU64,
}

/// Seed of the disk-entry checksum (the FNV-1a offset basis).
const CHECKSUM_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Attempts per disk read before a transient I/O error degrades to a miss.
const READ_ATTEMPTS: u32 = 3;

impl LiftResultCache {
    /// A memory-only cache holding at most `capacity` entries.
    pub fn in_memory(capacity: usize) -> LiftResultCache {
        LiftResultCache::build(capacity, None)
    }

    /// A two-tier cache persisting under `dir` (created if missing).
    pub fn persistent(
        capacity: usize,
        dir: impl Into<PathBuf>,
    ) -> std::io::Result<LiftResultCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let cache = LiftResultCache::build(capacity, Some(dir));
        cache.sweep_orphans();
        Ok(cache)
    }

    fn build(capacity: usize, disk_dir: Option<PathBuf>) -> LiftResultCache {
        LiftResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
            disk_dir,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            orphans_swept: AtomicU64::new(0),
            io_retries: AtomicU64::new(0),
        }
    }

    /// Removes `.json.tmp` files left by a writer that died between the
    /// temp write and the rename. They were never part of the store (the
    /// rename is what publishes an entry), so deleting them is always safe.
    fn sweep_orphans(&self) {
        let Some(dir) = &self.disk_dir else { return };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|x| x == "tmp")
                && path.is_file()
                && std::fs::remove_file(&path).is_ok()
            {
                self.orphans_swept.fetch_add(1, Ordering::Relaxed);
                obs_counters::ORPHANS_SWEPT.add(1);
            }
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, MemEntry>> {
        &self.shards[(key.fingerprint as usize) % SHARDS]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up an entry; `canon_text` guards against fingerprint collision
    /// (a mismatching stored text reads as a miss). Counts hits/misses.
    pub fn get(&self, key: &CacheKey, canon_text: &str) -> Option<Arc<CachedLift>> {
        let found = self.get_uncounted(key, canon_text);
        match &found {
            Some(_) => self.note_hit(),
            None => self.note_miss(),
        };
        found
    }

    fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        obs_counters::HITS.add(1);
    }

    fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs_counters::MISSES.add(1);
    }

    fn get_uncounted(&self, key: &CacheKey, canon_text: &str) -> Option<Arc<CachedLift>> {
        {
            let mut shard = self.shard(key).lock().expect("cache shard poisoned");
            if let Some(entry) = shard.get_mut(key) {
                if entry.payload.canon_text == canon_text {
                    entry.tick = self.tick.fetch_add(1, Ordering::Relaxed);
                    return Some(Arc::clone(&entry.payload));
                }
                return None; // fingerprint collision: never serve it
            }
        }
        let payload = Arc::new(self.disk_probe(key, canon_text)?);
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        obs_counters::DISK_HITS.add(1);
        self.insert_memory(*key, Arc::clone(&payload));
        Some(payload)
    }

    fn disk_path(&self, key: &CacheKey) -> Option<PathBuf> {
        Some(self.disk_dir.as_ref()?.join(key.file_stem() + ".json"))
    }

    fn disk_probe(&self, key: &CacheKey, canon_text: &str) -> Option<CachedLift> {
        let path = self.disk_path(key)?;
        let text = self.read_with_retry(&path)?;
        match decode_checked(&text) {
            Ok(entry) => (entry.canon_text == canon_text).then_some(entry),
            Err(_) => {
                // Torn write, bit rot, or a stale schema: move the file
                // aside (keeping the evidence) and read as a miss; the
                // next store writes a fresh entry under the original name.
                self.quarantine(&path);
                None
            }
        }
    }

    /// Reads a disk entry, retrying transient I/O errors with bounded
    /// exponential backoff. `None` means "no usable file": not found, or
    /// still failing after the retries (the cache degrades to a miss —
    /// never an error — on a flaky disk).
    fn read_with_retry(&self, path: &std::path::Path) -> Option<String> {
        for attempt in 0..READ_ATTEMPTS {
            let injected = fault::fail_read();
            if !injected {
                match std::fs::read_to_string(path) {
                    Ok(text) => return Some(text),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
                    Err(_) => {}
                }
            }
            self.io_retries.fetch_add(1, Ordering::Relaxed);
            obs_counters::IO_RETRIES.add(1);
            std::thread::sleep(Duration::from_millis(1u64 << attempt));
        }
        None
    }

    /// Renames a corrupt entry to `<name>.json.quarantined` (best-effort;
    /// falls back to deletion so the bad bytes can never be served again).
    ///
    /// Repeated corruption of the same entry must not overwrite the
    /// evidence of earlier incidents: when the plain quarantine name is
    /// taken, a monotonically increasing numeric suffix is appended
    /// (`.json.quarantined.1`, `.2`, …). Every incident — first or repeat —
    /// counts in `CacheStats::quarantined`.
    fn quarantine(&self, path: &std::path::Path) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        obs_counters::QUARANTINED.add(1);
        let mut aside = path.with_extension("json.quarantined");
        let mut repeat = 0u32;
        while aside.exists() {
            repeat += 1;
            aside = path.with_extension(format!("json.quarantined.{repeat}"));
        }
        if std::fs::rename(path, &aside).is_err() {
            let _ = std::fs::remove_file(path);
        }
    }

    fn insert_memory(&self, key: CacheKey, payload: Arc<CachedLift>) {
        let tick = self.next_tick();
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        shard.insert(key, MemEntry { payload, tick });
        self.inserts.fetch_add(1, Ordering::Relaxed);
        obs_counters::INSERTS.add(1);
        while shard.len() > self.per_shard_capacity {
            let oldest = shard
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
                .expect("non-empty shard");
            shard.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            obs_counters::EVICTIONS.add(1);
        }
    }

    /// Stores an entry in both tiers.
    pub fn put(&self, key: CacheKey, payload: CachedLift) {
        if let Some(path) = self.disk_path(&key) {
            if self.write_disk(&path, &payload) {
                self.disk_writes.fetch_add(1, Ordering::Relaxed);
                obs_counters::DISK_WRITES.add(1);
            }
        }
        self.insert_memory(key, Arc::new(payload));
    }

    fn write_disk(&self, path: &std::path::Path, payload: &CachedLift) -> bool {
        let tmp = path.with_extension("json.tmp");
        let body = encode_entry(payload).to_string();
        let sum = canon::fnv1a64(body.as_bytes(), CHECKSUM_SEED);
        let mut text = format!("{sum:016x}\n{body}");
        if fault::tear_write() {
            // Injected torn write: publish a truncated prefix through the
            // rename, exactly what a crash between write and fsync leaves
            // behind — the read-side checksum must quarantine it.
            text.truncate(text.len() / 2);
        }
        // Disk persistence is best-effort: an unwritable cache directory
        // degrades to memory-only rather than failing the lift.
        std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, path).is_ok()
    }

    /// Entries currently resident in the memory tier.
    pub fn memory_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            orphans_swept: self.orphans_swept.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
        }
    }
}

/// Verifies the checksum line and decodes the JSON body of an on-disk
/// entry. Any failure — short file, checksum mismatch, parse error, wrong
/// schema — is grounds for quarantine.
fn decode_checked(text: &str) -> Result<CachedLift, String> {
    let (line, body) = text
        .split_once('\n')
        .ok_or("entry is missing its checksum line")?;
    let expected = u64::from_str_radix(line.trim(), 16).map_err(|_| "malformed checksum line")?;
    let actual = canon::fnv1a64(body.as_bytes(), CHECKSUM_SEED);
    if actual != expected {
        return Err(format!(
            "checksum mismatch: stored {expected:016x}, computed {actual:016x}"
        ));
    }
    let value = Json::parse(body).map_err(|e| format!("body parse error: {e}"))?;
    decode_entry(&value)
}

/// Renames every kernel symbol of a postcondition through `map`
/// (quantified variables are bound, not kernel symbols, and pass through).
fn rename_post(post: &Postcondition, map: &HashMap<String, String>) -> Postcondition {
    let rename = |n: &String| map.get(n).unwrap_or(n).clone();
    Postcondition {
        clauses: post
            .clauses
            .iter()
            .map(|c| QuantClause {
                bounds: c
                    .bounds
                    .iter()
                    .map(|b| {
                        let mut b = b.clone();
                        b.var = rename(&b.var);
                        b.lo = canon::rename_expr(&b.lo, map);
                        b.hi = canon::rename_expr(&b.hi, map);
                        b
                    })
                    .collect(),
                eq: stng_pred::lang::OutEq {
                    array: rename(&c.eq.array),
                    indices: c
                        .eq
                        .indices
                        .iter()
                        .map(|ix| canon::rename_expr(ix, map))
                        .collect(),
                    rhs: canon::rename_expr(&c.eq.rhs, map),
                },
            })
            .collect(),
    }
}

/// Rewrites identifiers quoted as `'name'` in a diagnostic message through
/// `map` (the convention the lowering/liftability errors follow), so cached
/// failure reasons speak the requesting kernel's vocabulary. Unquoted prose
/// is left alone — only exact quoted identifiers are touched.
fn rename_quoted(text: &str, map: &HashMap<String, String>) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(start) = rest.find('\'') {
        let Some(len) = rest[start + 1..].find('\'') else {
            break;
        };
        let name = &rest[start + 1..start + 1 + len];
        out.push_str(&rest[..start]);
        out.push('\'');
        out.push_str(map.get(name).map(String::as_str).unwrap_or(name));
        out.push('\'');
        rest = &rest[start + 1 + len + 1..];
    }
    out.push_str(rest);
    out
}

/// The [`LiftCache`] implementation plugged into `stng::pipeline::Stng`:
/// keys the store off the pipeline-provided [`Canon`], rehydrates reports,
/// and **single-flights** concurrent misses — when several batch workers
/// hit the same fingerprint at once (e.g. alpha-variant duplicates fanned
/// out across threads), one computes and the rest wait for its record, so
/// duplicate kernels never pay for synthesis twice.
///
/// One instance serves one [`SynthesisConfig`]: the config digest is
/// computed once on first use (debug builds assert every later config
/// agrees). Distinct configurations want distinct caches — which the key's
/// config component would keep correct anyway, but pinning avoids
/// re-digesting on the hot path.
pub struct PipelineCache {
    store: LiftResultCache,
    inflight: Mutex<std::collections::HashSet<CacheKey>>,
    inflight_done: Condvar,
    pinned_digest: std::sync::OnceLock<u64>,
}

/// Upper bound on waiting for another worker's in-flight synthesis before
/// giving up and computing redundantly (protects against a worker dying
/// mid-lift without recording).
const INFLIGHT_WAIT: Duration = Duration::from_secs(60);

impl PipelineCache {
    /// Memory-only cache.
    pub fn in_memory(capacity: usize) -> PipelineCache {
        PipelineCache::wrap(LiftResultCache::in_memory(capacity))
    }

    /// Two-tier cache persisting under `dir`.
    ///
    /// # Errors
    ///
    /// Fails when the cache directory cannot be created.
    pub fn persistent(capacity: usize, dir: impl Into<PathBuf>) -> std::io::Result<PipelineCache> {
        Ok(PipelineCache::wrap(LiftResultCache::persistent(
            capacity, dir,
        )?))
    }

    fn wrap(store: LiftResultCache) -> PipelineCache {
        PipelineCache {
            store,
            inflight: Mutex::new(std::collections::HashSet::new()),
            inflight_done: Condvar::new(),
            pinned_digest: std::sync::OnceLock::new(),
        }
    }

    fn digest_for(&self, config: &SynthesisConfig) -> u64 {
        let digest = *self.pinned_digest.get_or_init(|| config_digest(config));
        debug_assert_eq!(
            digest,
            config_digest(config),
            "a PipelineCache instance serves a single SynthesisConfig"
        );
        digest
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Entries resident in the memory tier.
    pub fn memory_len(&self) -> usize {
        self.store.memory_len()
    }

    fn rehydrate(
        &self,
        kernel: &Kernel,
        fragment_name: &str,
        canon: &Canon,
        cached: &CachedLift,
    ) -> Option<KernelReport> {
        let outcome = if cached.translated {
            let stored = cached.post.as_ref()?;
            // Capture guard: a stored bound-variable name that is *not* a
            // canonical symbol (i.e. the original synthesizer's own
            // quantifier name, left untouched by the rename) must not
            // collide with a symbol of the requesting kernel, or the
            // restored postcondition would conflate the two distinct
            // variables. Bound variables that *are* canonical names are
            // safe: the record-side rename mapped them there together with
            // every other occurrence (the original kernel had a symbol
            // spelled like the quantifier), and the restore is the same
            // bijection in reverse — it reproduces the cold-side
            // postcondition exactly. Vanishingly rare either way; read as
            // a miss and synthesize fresh.
            let collides = stored.clauses.iter().flat_map(|c| &c.bounds).any(|b| {
                !canon.from_canonical.contains_key(&b.var)
                    && kernel
                        .params
                        .iter()
                        .chain(&kernel.locals)
                        .any(|p| p.name == b.var)
            });
            if collides {
                return None;
            }
            let post = rename_post(stored, &canon.from_canonical);
            let summary = StencilSummary::from_postcondition(&kernel.name, &post).ok()?;
            KernelOutcome::Translated {
                post,
                summary,
                soundly_verified: cached.soundly_verified,
                cegis_iterations: cached.cegis_iterations,
                // Budget-affected outcomes are never stored (see `record`),
                // so a rehydrated report is always an ungoverned result.
                degraded: None,
            }
        } else {
            KernelOutcome::Untranslated {
                reason: rename_quoted(cached.reason.as_deref()?, &canon.from_canonical),
            }
        };
        Some(KernelReport {
            name: fragment_name.to_string(),
            kernel: Some(kernel.clone()),
            outcome,
            synthesis_time: Duration::from_nanos(cached.synthesis_time_ns),
            control_bits: cached.control_bits,
            postcond_nodes: cached.postcond_nodes,
            prover_attempts: cached.prover_attempts,
            peak_candidates: cached.peak_candidates,
            phase: cached.phase,
            // Filled in by the pipeline, which owns the Canon (the pipeline
            // also flips `cached` on its lookup path).
            fingerprint: None,
            cached: false,
        })
    }
}

impl LiftCache for PipelineCache {
    fn lookup(
        &self,
        kernel: &Kernel,
        canon: &Canon,
        fragment_name: &str,
        config: &SynthesisConfig,
    ) -> Option<KernelReport> {
        let key = CacheKey {
            fingerprint: canon.fingerprint,
            config: self.digest_for(config),
        };
        let deadline = std::time::Instant::now() + INFLIGHT_WAIT;
        loop {
            if let Some(cached) = self.store.get_uncounted(&key, &canon.text) {
                return match self.rehydrate(kernel, fragment_name, canon, &cached) {
                    Some(report) => {
                        self.store.note_hit();
                        Some(report)
                    }
                    None => {
                        // The capture guard rejected the entry: an honest
                        // miss. Deliberately not claimed in-flight — the
                        // entry stays valid for other kernels.
                        self.store.note_miss();
                        None
                    }
                };
            }
            // Miss. Single-flight: claim the key, or wait for whichever
            // worker already did and re-check the store.
            let mut inflight = self.inflight.lock().expect("inflight set poisoned");
            if inflight.insert(key) {
                self.store.note_miss();
                return None;
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                // The computing worker is taking implausibly long (or died
                // without recording): compute redundantly instead of
                // hanging.
                self.store.note_miss();
                return None;
            }
            let (guard, _timeout) = self
                .inflight_done
                .wait_timeout(inflight, remaining)
                .expect("inflight set poisoned");
            drop(guard);
        }
    }

    fn record(
        &self,
        _kernel: &Kernel,
        canon: &Canon,
        config: &SynthesisConfig,
        report: &KernelReport,
    ) {
        let key = CacheKey {
            fingerprint: canon.fingerprint,
            config: self.digest_for(config),
        };
        // Budget-affected outcomes describe this run's resource envelope,
        // not the kernel: a timeout under a tight deadline, a crash, or a
        // degraded (bounded-only) translation must not be served to a later
        // run with a roomier budget. They are never stored — but the
        // single-flight claim below is still released, so waiting workers
        // wake up and compute for themselves.
        let storable = match &report.outcome {
            KernelOutcome::Translated {
                post,
                soundly_verified,
                cegis_iterations,
                degraded,
                ..
            } if degraded.is_none() => Some((
                true,
                Some(rename_post(post, &canon.to_canonical)),
                None,
                *soundly_verified,
                *cegis_iterations,
            )),
            KernelOutcome::Untranslated { reason } => Some((
                false,
                None,
                Some(rename_quoted(reason, &canon.to_canonical)),
                false,
                0,
            )),
            KernelOutcome::Translated { .. }
            | KernelOutcome::Timeout { .. }
            | KernelOutcome::Crashed { .. } => None,
        };
        if let Some((translated, post, reason, soundly_verified, cegis_iterations)) = storable {
            self.store.put(
                key,
                CachedLift {
                    canon_text: canon.text.clone(),
                    translated,
                    post,
                    reason,
                    soundly_verified,
                    cegis_iterations,
                    synthesis_time_ns: report.synthesis_time.as_nanos().min(u64::MAX as u128)
                        as u64,
                    control_bits: report.control_bits,
                    postcond_nodes: report.postcond_nodes,
                    prover_attempts: report.prover_attempts,
                    peak_candidates: report.peak_candidates,
                    phase: report.phase,
                },
            );
        }
        // Release the single-flight claim (a no-op when this record was not
        // preceded by a claiming lookup) and wake any workers waiting on it.
        self.inflight
            .lock()
            .expect("inflight set poisoned")
            .remove(&key);
        self.inflight_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CachedLift;

    fn payload(text: &str) -> CachedLift {
        CachedLift {
            canon_text: text.to_string(),
            translated: false,
            post: None,
            reason: Some("not a stencil".to_string()),
            soundly_verified: false,
            cegis_iterations: 0,
            synthesis_time_ns: 1,
            control_bits: Default::default(),
            postcond_nodes: 0,
            prover_attempts: 0,
            peak_candidates: 0,
            phase: Default::default(),
        }
    }

    fn key(fp: u128) -> CacheKey {
        CacheKey {
            fingerprint: fp,
            config: 7,
        }
    }

    #[test]
    fn memory_tier_hits_and_counts() {
        let cache = LiftResultCache::in_memory(64);
        assert!(cache.get(&key(1), "t1").is_none());
        cache.put(key(1), payload("t1"));
        let hit = cache.get(&key(1), "t1").expect("hit");
        assert_eq!(hit.canon_text, "t1");
        // A colliding fingerprint with different canonical text is refused.
        assert!(cache.get(&key(1), "OTHER").is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 2, 1));
        assert_eq!(cache.memory_len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used_within_a_shard() {
        // Capacity 8 over 8 shards = 1 entry per shard; keys 1 and 9 share
        // shard 1.
        let cache = LiftResultCache::in_memory(8);
        cache.put(key(1), payload("a"));
        cache.put(key(9), payload("b"));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&key(1), "a").is_none());
        assert!(cache.get(&key(9), "b").is_some());
    }

    #[test]
    fn disk_tier_survives_a_new_cache_instance() {
        let dir = std::env::temp_dir().join(format!(
            "stng-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = LiftResultCache::persistent(64, &dir).unwrap();
            cache.put(key(42), payload("text42"));
            assert_eq!(cache.stats().disk_writes, 1);
        }
        let fresh = LiftResultCache::persistent(64, &dir).unwrap();
        let hit = fresh.get(&key(42), "text42").expect("disk hit");
        assert_eq!(hit.reason.as_deref(), Some("not a stencil"));
        let stats = fresh.stats();
        assert_eq!((stats.hits, stats.disk_hits), (1, 1));
        // Promoted into memory: a second get does not touch the disk.
        fresh.get(&key(42), "text42").expect("memory hit");
        assert_eq!(fresh.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rename_quoted_touches_only_mapped_quoted_identifiers() {
        let mut map = HashMap::new();
        map.insert("k".to_string(), "l1".to_string());
        assert_eq!(
            rename_quoted("loop over 'k' is decrementing (step -1)", &map),
            "loop over 'l1' is decrementing (step -1)"
        );
        // Unmapped quotes and unquoted text pass through; unbalanced quotes
        // do not panic.
        assert_eq!(
            rename_quoted("variable 'x' at k", &map),
            "variable 'x' at k"
        );
        assert_eq!(rename_quoted("dangling ' quote", &map), "dangling ' quote");
    }

    #[test]
    fn corrupt_disk_entry_is_quarantined_and_overwritten() {
        let dir = std::env::temp_dir().join(format!(
            "stng-cache-quarantine-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path;
        {
            let cache = LiftResultCache::persistent(64, &dir).unwrap();
            cache.put(key(42), payload("text42"));
            path = cache.disk_path(&key(42)).unwrap();
        }
        // Truncate the file mid-body: the checksum no longer matches.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();

        let fresh = LiftResultCache::persistent(64, &dir).unwrap();
        assert!(fresh.get(&key(42), "text42").is_none());
        assert_eq!(fresh.stats().quarantined, 1);
        assert!(!path.exists(), "corrupt entry must not stay in place");
        assert!(path.with_extension("json.quarantined").exists());
        // The next store reclaims the slot and the entry is servable again.
        fresh.put(key(42), payload("text42"));
        assert!(fresh.get(&key(42), "text42").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_corruption_keeps_every_piece_of_evidence() {
        let dir = std::env::temp_dir().join(format!(
            "stng-cache-requarantine-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = LiftResultCache::persistent(64, &dir)
            .unwrap()
            .disk_path(&key(42))
            .unwrap();
        // Corrupt the same entry three times; each probe must quarantine to
        // a fresh name instead of clobbering the previous evidence file. A
        // fresh instance per round keeps the probe on the disk tier.
        for round in 0..3u64 {
            {
                let writer = LiftResultCache::persistent(64, &dir).unwrap();
                writer.put(key(42), payload("text42"));
            }
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, format!("{}-round{round}", &text[..text.len() / 2])).unwrap();
            let probe = LiftResultCache::persistent(64, &dir).unwrap();
            assert!(probe.get(&key(42), "text42").is_none());
            assert_eq!(probe.stats().quarantined, 1, "each repeat is counted");
        }
        assert!(path.with_extension("json.quarantined").exists());
        assert!(path.with_extension("json.quarantined.1").exists());
        assert!(path.with_extension("json.quarantined.2").exists());
        // Each evidence file holds its own incident's bytes.
        let first = std::fs::read_to_string(path.with_extension("json.quarantined")).unwrap();
        let third = std::fs::read_to_string(path.with_extension("json.quarantined.2")).unwrap();
        assert!(first.ends_with("-round0"));
        assert!(third.ends_with("-round2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_schema_entry_is_quarantined() {
        let dir = std::env::temp_dir().join(format!(
            "stng-cache-schema-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = LiftResultCache::persistent(64, &dir).unwrap();
        // A well-checksummed body with an old schema number still reads as
        // a miss and is moved aside.
        let body = r#"{"schema":1,"canon_text":"t"}"#;
        let sum = canon::fnv1a64(body.as_bytes(), CHECKSUM_SEED);
        let path = cache.disk_path(&key(5)).unwrap();
        std::fs::write(&path, format!("{sum:016x}\n{body}")).unwrap();
        assert!(cache.get(&key(5), "t").is_none());
        assert_eq!(cache.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_tmp_files_are_swept_on_open() {
        let dir = std::env::temp_dir().join(format!(
            "stng-cache-orphan-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let orphan = dir.join("deadbeef-0000000000000007.json.tmp");
        std::fs::write(&orphan, "half-written").unwrap();
        let cache = LiftResultCache::persistent(64, &dir).unwrap();
        assert_eq!(cache.stats().orphans_swept, 1);
        assert!(!orphan.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hit_rate_arithmetic() {
        let a = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(a.hit_rate(), 0.75);
        assert_eq!(CacheStats::default().hit_rate(), 1.0);
        let b = CacheStats {
            hits: 5,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(b.since(&a).hits, 2);
    }
}
