//! The batch lifting driver: lift a whole corpus of Fortran sources through
//! the fingerprint cache, in one or more passes, sweeping the expression
//! arenas between passes.
//!
//! This is the service loop in miniature — each pass models one incoming
//! batch of lifting requests. Sources are distributed over the existing
//! scoped-thread machinery (`stng_intern::parallel::map`), every kernel
//! flows through [`crate::cache::PipelineCache`], and the driver reports
//! per-kernel outcomes, per-pass cache-counter deltas, and arena occupancy
//! before/after each sweep.

use crate::cache::{CacheStats, PipelineCache};
use crate::json::{nu, obj, s, Json};
use std::sync::Arc;
use std::time::Instant;
use stng::memory;
use stng::pipeline::{KernelOutcome, KernelReport, Stng};
use stng_intern::parallel;
use stng_synth::cegis::SynthesisConfig;

/// One named source file (or corpus entry) to lift.
#[derive(Debug, Clone)]
pub struct BatchSource {
    /// Display name (file path or corpus kernel name).
    pub name: String,
    /// Fortran-subset source text (empty when `read_error` is set).
    pub source: String,
    /// Set when the file could not be read (unreadable, non-UTF-8): the
    /// driver reports it as a per-source row instead of lifting it, so one
    /// stray binary file cannot kill a whole batch.
    pub read_error: Option<String>,
}

impl BatchSource {
    /// A readable source.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> BatchSource {
        BatchSource {
            name: name.into(),
            source: source.into(),
            read_error: None,
        }
    }
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Number of full passes over the sources (pass 2+ exercises the warm
    /// cache).
    pub passes: usize,
    /// Sweep the expression arenas/memos after each pass.
    pub sweep_between: bool,
    /// Worker threads for lifting independent sources.
    pub threads: usize,
    /// Memory-tier capacity (entries).
    pub mem_capacity: usize,
    /// Disk-tier directory (`None` = memory-only).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Synthesis configuration for every kernel.
    pub config: SynthesisConfig,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            passes: 1,
            sweep_between: true,
            threads: parallel::default_parallelism(),
            mem_capacity: 4096,
            cache_dir: None,
            config: SynthesisConfig::default(),
        }
    }
}

/// Outcome of one kernel in one pass.
#[derive(Debug, Clone)]
pub struct BatchKernel {
    /// Source (file / corpus entry) the kernel came from.
    pub source_name: String,
    /// Fragment name.
    pub kernel_name: String,
    /// Structural fingerprint (hex), when the kernel lowered.
    pub fingerprint: Option<String>,
    /// Wall-clock time lifting this kernel's source in this pass, divided
    /// evenly when a source has several fragments.
    pub lift_ms: f64,
    /// The full pipeline report.
    pub report: KernelReport,
}

/// One pass over all sources.
#[derive(Debug, Clone)]
pub struct BatchPass {
    /// 1-based pass number.
    pub number: usize,
    /// Wall-clock time of the whole pass.
    pub wall_ms: f64,
    /// Per-kernel outcomes, in source order.
    pub kernels: Vec<BatchKernel>,
    /// Cache-counter delta for this pass.
    pub cache: CacheStats,
    /// Sweepable arena/memo entries when the pass (and its lifts) finished.
    pub arena_entries_before_sweep: usize,
    /// Sweep results, when sweeping is enabled.
    pub sweep: Option<memory::SweepReport>,
    /// Sweepable entries after the sweep (equals `arena_entries_before_sweep`
    /// when sweeping is disabled).
    pub arena_entries_after_sweep: usize,
}

/// The full driver result.
pub struct BatchReport {
    /// All passes, in order.
    pub passes: Vec<BatchPass>,
    /// The cache used (for final stats / further passes).
    pub cache: Arc<PipelineCache>,
}

impl BatchReport {
    /// Serializes the report (used by `stng-batch --json`).
    pub fn to_json(&self) -> Json {
        let passes = self
            .passes
            .iter()
            .map(|pass| {
                let kernels = pass
                    .kernels
                    .iter()
                    .map(|k| {
                        let (translated, soundly) = match &k.report.outcome {
                            KernelOutcome::Translated {
                                soundly_verified, ..
                            } => (true, *soundly_verified),
                            KernelOutcome::Untranslated { .. } => (false, false),
                        };
                        let ms = |ns: u64| Json::Num((ns as f64 / 1e3).round() / 1e3);
                        obj(vec![
                            ("source", s(k.source_name.clone())),
                            ("kernel", s(k.kernel_name.clone())),
                            (
                                "fingerprint",
                                k.fingerprint.clone().map(s).unwrap_or(Json::Null),
                            ),
                            ("lift_ms", Json::Num((k.lift_ms * 1e3).round() / 1e3)),
                            ("capture_ms", ms(k.report.phase.capture_ns)),
                            ("bounded_ms", ms(k.report.phase.bounded_ns)),
                            ("prove_ms", ms(k.report.phase.prove_ns)),
                            ("captures", nu(k.report.phase.captures)),
                            ("translated", Json::Bool(translated)),
                            ("soundly_verified", Json::Bool(soundly)),
                        ])
                    })
                    .collect();
                obj(vec![
                    ("pass", nu(pass.number)),
                    ("wall_ms", Json::Num((pass.wall_ms * 1e3).round() / 1e3)),
                    ("kernels", Json::Arr(kernels)),
                    (
                        "cache",
                        obj(vec![
                            ("hits", Json::Num(pass.cache.hits as f64)),
                            ("misses", Json::Num(pass.cache.misses as f64)),
                            ("disk_hits", Json::Num(pass.cache.disk_hits as f64)),
                            ("inserts", Json::Num(pass.cache.inserts as f64)),
                            ("evictions", Json::Num(pass.cache.evictions as f64)),
                            ("disk_writes", Json::Num(pass.cache.disk_writes as f64)),
                            ("hit_rate", Json::Num(pass.cache.hit_rate())),
                        ]),
                    ),
                    (
                        "arena",
                        obj(vec![
                            ("entries_before_sweep", nu(pass.arena_entries_before_sweep)),
                            (
                                "swept",
                                pass.sweep
                                    .map(|r| Json::Num(r.evicted as f64))
                                    .unwrap_or(Json::Null),
                            ),
                            ("entries_after_sweep", nu(pass.arena_entries_after_sweep)),
                        ]),
                    ),
                ])
            })
            .collect();
        obj(vec![
            ("schema", Json::Num(1.0)),
            ("passes", Json::Arr(passes)),
        ])
    }
}

/// Runs `options.passes` passes over `sources` through a fresh cache.
pub fn run_batch(sources: &[BatchSource], options: &BatchOptions) -> std::io::Result<BatchReport> {
    let cache: Arc<PipelineCache> = Arc::new(match &options.cache_dir {
        Some(dir) => PipelineCache::persistent(options.mem_capacity, dir)?,
        None => PipelineCache::in_memory(options.mem_capacity),
    });
    let mut report = BatchReport {
        passes: Vec::with_capacity(options.passes),
        cache: Arc::clone(&cache),
    };
    let stng = Stng {
        config: options.config.clone(),
        cache: Some(cache.clone() as Arc<dyn stng::LiftCache>),
    };
    for number in 1..=options.passes {
        report
            .passes
            .push(run_pass(number, sources, &stng, &cache, options));
    }
    Ok(report)
}

fn run_pass(
    number: usize,
    sources: &[BatchSource],
    stng: &Stng,
    cache: &PipelineCache,
    options: &BatchOptions,
) -> BatchPass {
    let stats_before = cache.stats();
    let started = Instant::now();
    // One unit per source: kernels inside a source stay sequential (they
    // share the fragment classification), sources fan out across workers.
    // Unreadable sources short-circuit into an error row downstream.
    let lifted = parallel::map(sources, options.threads, |src| {
        let t = Instant::now();
        let outcome = match &src.read_error {
            Some(e) => Err(format!("source could not be read: {e}")),
            None => stng.lift_source(&src.source),
        };
        (outcome, t.elapsed().as_secs_f64() * 1e3)
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut kernels = Vec::new();
    for (src, (outcome, ms)) in sources.iter().zip(lifted) {
        match outcome {
            Ok(lift) => {
                // A source that parses but offers no candidate loop nests
                // gets an explicit row (mirroring the parse-failure row
                // below), so coverage audits can tell "processed, nothing
                // to lift" from "never processed".
                if lift.kernels.is_empty() {
                    kernels.push(BatchKernel {
                        source_name: src.name.clone(),
                        kernel_name: format!("{}:<no candidates>", src.name),
                        fingerprint: None,
                        lift_ms: ms,
                        report: KernelReport {
                            name: src.name.clone(),
                            kernel: None,
                            outcome: KernelOutcome::Untranslated {
                                reason: format!(
                                    "source contains no candidate kernels \
                                     ({} outermost loop(s) skipped by the identifier)",
                                    lift.skipped_loops
                                ),
                            },
                            synthesis_time: std::time::Duration::ZERO,
                            control_bits: Default::default(),
                            postcond_nodes: 0,
                            prover_attempts: 0,
                            peak_candidates: 0,
                            fingerprint: None,
                            phase: Default::default(),
                        },
                    });
                    continue;
                }
                let n = lift.kernels.len() as f64;
                for k in lift.kernels {
                    kernels.push(BatchKernel {
                        source_name: src.name.clone(),
                        kernel_name: k.name.clone(),
                        fingerprint: k.fingerprint.clone(),
                        lift_ms: ms / n,
                        report: k,
                    });
                }
            }
            Err(source_error) => {
                // A malformed or unreadable source yields one synthetic
                // untranslated row so it is visible in the report rather
                // than dropped.
                kernels.push(BatchKernel {
                    source_name: src.name.clone(),
                    kernel_name: format!("{}:<error>", src.name),
                    fingerprint: None,
                    lift_ms: ms,
                    report: KernelReport {
                        name: src.name.clone(),
                        kernel: None,
                        outcome: KernelOutcome::Untranslated {
                            reason: source_error,
                        },
                        synthesis_time: std::time::Duration::ZERO,
                        control_bits: Default::default(),
                        postcond_nodes: 0,
                        prover_attempts: 0,
                        peak_candidates: 0,
                        fingerprint: None,
                        phase: Default::default(),
                    },
                });
            }
        }
    }

    let arena_entries_before_sweep = memory::sweepable_entries();
    let sweep = options.sweep_between.then(memory::sweep);
    BatchPass {
        number,
        wall_ms,
        kernels,
        cache: cache.stats().since(&stats_before),
        arena_entries_before_sweep,
        sweep,
        arena_entries_after_sweep: memory::sweepable_entries(),
    }
}

/// Loads sources from the built-in benchmark corpus.
pub fn corpus_sources() -> Vec<BatchSource> {
    stng_corpus::all_kernels()
        .into_iter()
        .map(|k| BatchSource::new(k.name, k.source))
        .collect()
}

/// Loads every regular file of `dir` (non-recursive, sorted by name) as a
/// source. Files that cannot be read as UTF-8 text (stray binaries, bad
/// permissions) become error-carrying sources rather than aborting the
/// batch; only the directory listing itself is fatal.
pub fn dir_sources(dir: &std::path::Path) -> std::io::Result<Vec<BatchSource>> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    Ok(paths
        .into_iter()
        .map(|p| {
            let name = p.display().to_string();
            match std::fs::read_to_string(&p) {
                Ok(source) => BatchSource::new(name, source),
                Err(e) => BatchSource {
                    name,
                    source: String::new(),
                    read_error: Some(e.to_string()),
                },
            }
        })
        .collect())
}

/// Loads sources from a manifest: one file path per line (relative to the
/// manifest's directory), `#` comments and blank lines ignored.
pub fn manifest_sources(manifest: &std::path::Path) -> std::io::Result<Vec<BatchSource>> {
    let base = manifest.parent().unwrap_or(std::path::Path::new("."));
    let mut out = Vec::new();
    for line in std::fs::read_to_string(manifest)?.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Manifest entries are explicit requests: a missing or unreadable
        // listed file is an error, unlike the permissive directory scan.
        let path = base.join(line);
        out.push(BatchSource::new(
            path.display().to_string(),
            std::fs::read_to_string(&path)?,
        ));
    }
    Ok(out)
}
