//! The batch lifting driver: lift a whole corpus of Fortran sources through
//! the fingerprint cache, in one or more passes, sweeping the expression
//! arenas between passes.
//!
//! This is the service loop in miniature — each pass models one incoming
//! batch of lifting requests. Sources are distributed over the existing
//! scoped-thread machinery (`stng_intern::parallel::map`), every kernel
//! flows through [`crate::cache::PipelineCache`], and the driver reports
//! per-kernel outcomes, per-pass cache-counter deltas, and arena occupancy
//! before/after each sweep.

use crate::cache::{CacheStats, PipelineCache};
use crate::json::{nu, obj, s, Json};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};
use stng::memory;
use stng::pipeline::{KernelOutcome, KernelReport, LiftReport, Stng};
use stng_intern::guard::Budget;
use stng_intern::parallel;
use stng_synth::cegis::SynthesisConfig;

/// One named source file (or corpus entry) to lift.
#[derive(Debug, Clone)]
pub struct BatchSource {
    /// Display name (file path or corpus kernel name).
    pub name: String,
    /// Fortran-subset source text (empty when `read_error` is set).
    pub source: String,
    /// Set when the file could not be read (unreadable, non-UTF-8): the
    /// driver reports it as a per-source row instead of lifting it, so one
    /// stray binary file cannot kill a whole batch.
    pub read_error: Option<String>,
}

impl BatchSource {
    /// A readable source.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> BatchSource {
        BatchSource {
            name: name.into(),
            source: source.into(),
            read_error: None,
        }
    }
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Number of full passes over the sources (pass 2+ exercises the warm
    /// cache).
    pub passes: usize,
    /// Sweep the expression arenas/memos after each pass.
    pub sweep_between: bool,
    /// Worker threads for lifting independent sources.
    pub threads: usize,
    /// Memory-tier capacity (entries).
    pub mem_capacity: usize,
    /// Disk-tier directory (`None` = memory-only).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Synthesis configuration for every kernel.
    pub config: SynthesisConfig,
    /// Wall-clock deadline for the whole batch (all passes), milliseconds.
    pub deadline_ms: Option<u64>,
    /// Wall-clock deadline for lifting one source, milliseconds. Doubles on
    /// every retry.
    pub kernel_timeout_ms: Option<u64>,
    /// Bounded-check fuel for lifting one source. Doubles on every retry.
    pub kernel_fuel: Option<u64>,
    /// Prover-attempt budget for lifting one source. Doubles on every retry.
    pub kernel_prover_attempts: Option<u64>,
    /// Extra attempts for a source whose lift crashed or was cut short by
    /// its per-source budget, each with the budget doubled. Retries are
    /// skipped once the batch-wide deadline is gone.
    pub retries: u32,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            passes: 1,
            sweep_between: true,
            threads: parallel::default_parallelism(),
            mem_capacity: 4096,
            cache_dir: None,
            config: SynthesisConfig::default(),
            deadline_ms: None,
            kernel_timeout_ms: None,
            kernel_fuel: None,
            kernel_prover_attempts: None,
            retries: 0,
        }
    }
}

/// Outcome of one kernel in one pass.
#[derive(Debug, Clone)]
pub struct BatchKernel {
    /// Source (file / corpus entry) the kernel came from.
    pub source_name: String,
    /// Fragment name.
    pub kernel_name: String,
    /// Structural fingerprint (hex), when the kernel lowered.
    pub fingerprint: Option<String>,
    /// Wall-clock time lifting this kernel's source in this pass, divided
    /// evenly when a source has several fragments.
    pub lift_ms: f64,
    /// The full pipeline report.
    pub report: KernelReport,
}

/// One pass over all sources.
#[derive(Debug, Clone)]
pub struct BatchPass {
    /// 1-based pass number.
    pub number: usize,
    /// Wall-clock time of the whole pass.
    pub wall_ms: f64,
    /// Per-kernel outcomes, in source order.
    pub kernels: Vec<BatchKernel>,
    /// Cache-counter delta for this pass.
    pub cache: CacheStats,
    /// Sweepable arena/memo entries when the pass (and its lifts) finished.
    pub arena_entries_before_sweep: usize,
    /// Sweep results, when sweeping is enabled.
    pub sweep: Option<memory::SweepReport>,
    /// Sweepable entries after the sweep (equals `arena_entries_before_sweep`
    /// when sweeping is disabled).
    pub arena_entries_after_sweep: usize,
}

/// The full driver result.
pub struct BatchReport {
    /// All passes, in order.
    pub passes: Vec<BatchPass>,
    /// The cache used (for final stats / further passes).
    pub cache: Arc<PipelineCache>,
}

/// Coarse classification of an outcome, the last rung it reached on the
/// degradation ladder (see `docs/robustness.md`).
pub fn outcome_tag(outcome: &KernelOutcome) -> &'static str {
    match outcome {
        KernelOutcome::Translated {
            degraded: Some(_), ..
        } => "degraded",
        KernelOutcome::Translated { .. } => "translated",
        KernelOutcome::Untranslated { .. } => "untranslated",
        KernelOutcome::Timeout { .. } => "timeout",
        KernelOutcome::Crashed { .. } => "crashed",
    }
}

impl BatchPass {
    /// Outcome-tag counts: `(translated, degraded, untranslated, timeout,
    /// crashed)`.
    pub fn summary(&self) -> (usize, usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0, 0);
        for k in &self.kernels {
            match outcome_tag(&k.report.outcome) {
                "translated" => counts.0 += 1,
                "degraded" => counts.1 += 1,
                "untranslated" => counts.2 += 1,
                "timeout" => counts.3 += 1,
                _ => counts.4 += 1,
            }
        }
        counts
    }
}

impl BatchReport {
    /// Serializes the report (used by `stng-batch --json`).
    pub fn to_json(&self) -> Json {
        self.encode(true)
    }

    /// The report with every timing and occupancy field stripped: only the
    /// deterministic facts (outcomes, fingerprints, cache counters) remain,
    /// so two governed runs of the same corpus with the same counter-only
    /// budgets serialize byte-identically. Pins the determinism guarantee
    /// in `tests/determinism.rs`.
    pub fn to_canonical_json(&self) -> Json {
        self.encode(false)
    }

    fn encode(&self, timings: bool) -> Json {
        let passes = self
            .passes
            .iter()
            .map(|pass| {
                let kernels = pass
                    .kernels
                    .iter()
                    .map(|k| {
                        let (translated, soundly, degraded) = match &k.report.outcome {
                            KernelOutcome::Translated {
                                soundly_verified,
                                degraded,
                                ..
                            } => (true, *soundly_verified, degraded.map(|d| d.as_str())),
                            KernelOutcome::Untranslated { .. } => (false, false, None),
                            KernelOutcome::Timeout { reason, .. } => {
                                (false, false, Some(reason.as_str()))
                            }
                            KernelOutcome::Crashed { .. } => (false, false, None),
                        };
                        let ms = |ns: u64| Json::Num((ns as f64 / 1e3).round() / 1e3);
                        let mut fields = vec![
                            ("source", s(k.source_name.clone())),
                            ("kernel", s(k.kernel_name.clone())),
                            (
                                "fingerprint",
                                k.fingerprint.clone().map(s).unwrap_or(Json::Null),
                            ),
                        ];
                        if timings {
                            // Memo/core counters live with the timings: hit
                            // totals depend on how candidate workers and
                            // sibling kernels interleave, so they are
                            // schedule-dependent exactly like durations and
                            // must stay out of the canonical encoding.
                            fields.extend([
                                ("lift_ms", Json::Num((k.lift_ms * 1e3).round() / 1e3)),
                                ("capture_ms", ms(k.report.phase.capture_ns)),
                                ("bounded_ms", ms(k.report.phase.bounded_ns)),
                                ("prove_ms", ms(k.report.phase.prove_ns)),
                                ("oblig_hits", Json::Num(k.report.phase.oblig_hits as f64)),
                                (
                                    "oblig_misses",
                                    Json::Num(k.report.phase.oblig_misses as f64),
                                ),
                                ("core_hits", Json::Num(k.report.phase.core_hits as f64)),
                                ("screened", Json::Num(k.report.phase.screened as f64)),
                                ("survivors", Json::Num(k.report.phase.survivors as f64)),
                                ("batch_scans", Json::Num(k.report.phase.batch_scans as f64)),
                            ]);
                        }
                        fields.extend([
                            ("captures", nu(k.report.phase.captures)),
                            // Whether the lifting cache served this kernel:
                            // deterministic (pass structure fixes hits), so
                            // it stays in the canonical encoding.
                            ("cached", Json::Bool(k.report.cached)),
                            ("outcome", s(outcome_tag(&k.report.outcome))),
                            ("translated", Json::Bool(translated)),
                            ("soundly_verified", Json::Bool(soundly)),
                            ("degraded", degraded.map(s).unwrap_or(Json::Null)),
                        ]);
                        obj(fields)
                    })
                    .collect();
                let (ok, deg, unt, tout, crash) = pass.summary();
                let mut fields = vec![("pass", nu(pass.number))];
                if timings {
                    fields.push(("wall_ms", Json::Num((pass.wall_ms * 1e3).round() / 1e3)));
                }
                fields.extend([
                    ("kernels", Json::Arr(kernels)),
                    (
                        "summary",
                        obj(vec![
                            ("translated", nu(ok)),
                            ("degraded", nu(deg)),
                            ("untranslated", nu(unt)),
                            ("timeout", nu(tout)),
                            ("crashed", nu(crash)),
                        ]),
                    ),
                    (
                        "cache",
                        obj(vec![
                            ("hits", Json::Num(pass.cache.hits as f64)),
                            ("misses", Json::Num(pass.cache.misses as f64)),
                            ("disk_hits", Json::Num(pass.cache.disk_hits as f64)),
                            ("inserts", Json::Num(pass.cache.inserts as f64)),
                            ("evictions", Json::Num(pass.cache.evictions as f64)),
                            ("disk_writes", Json::Num(pass.cache.disk_writes as f64)),
                            ("quarantined", Json::Num(pass.cache.quarantined as f64)),
                            ("io_retries", Json::Num(pass.cache.io_retries as f64)),
                            ("hit_rate", Json::Num(pass.cache.hit_rate())),
                        ]),
                    ),
                ]);
                if timings {
                    fields.push((
                        "arena",
                        obj(vec![
                            ("entries_before_sweep", nu(pass.arena_entries_before_sweep)),
                            (
                                "swept",
                                pass.sweep
                                    .map(|r| Json::Num(r.evicted as f64))
                                    .unwrap_or(Json::Null),
                            ),
                            ("entries_after_sweep", nu(pass.arena_entries_after_sweep)),
                        ]),
                    ));
                }
                obj(fields)
            })
            .collect();
        obj(vec![
            ("schema", Json::Num(2.0)),
            ("passes", Json::Arr(passes)),
        ])
    }
}

/// Runs `options.passes` passes over `sources` through a fresh cache.
pub fn run_batch(sources: &[BatchSource], options: &BatchOptions) -> std::io::Result<BatchReport> {
    let cache: Arc<PipelineCache> = Arc::new(match &options.cache_dir {
        Some(dir) => PipelineCache::persistent(options.mem_capacity, dir)?,
        None => PipelineCache::in_memory(options.mem_capacity),
    });
    let mut report = BatchReport {
        passes: Vec::with_capacity(options.passes),
        cache: Arc::clone(&cache),
    };
    // The batch-wide budget spans all passes; per-source child budgets
    // charge it, so a dead batch deadline cuts every remaining kernel over
    // to timeout rows instead of letting the tail run long.
    let batch_budget = Budget::limited(options.deadline_ms.map(Duration::from_millis), None, None);
    for number in 1..=options.passes {
        report
            .passes
            .push(run_pass(number, sources, &cache, options, &batch_budget));
    }
    Ok(report)
}

/// What lifting one source produced, after retries and panic isolation.
enum SourceOutcome {
    Lifted(LiftReport),
    SourceError(String),
    Crashed(String),
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Lifts one source under a child of the batch budget, retrying crashed or
/// budget-cut lifts with the per-source budget doubled each attempt. A
/// panic anywhere in the lift is caught here, so one poisoned source can
/// never take down the batch (or its worker thread).
fn lift_source_governed(
    src: &BatchSource,
    cache: &Arc<PipelineCache>,
    options: &BatchOptions,
    batch_budget: &Budget,
) -> SourceOutcome {
    if let Some(e) = &src.read_error {
        return SourceOutcome::SourceError(format!("source could not be read: {e}"));
    }
    let attempts = options.retries.saturating_add(1);
    let mut last = None;
    for attempt in 0..attempts {
        if attempt > 0 && batch_budget.exhausted().is_some() {
            break; // retrying into a dead batch deadline is wasted work
        }
        let scale = 1u64 << attempt.min(32);
        let budget = batch_budget.child(
            options
                .kernel_timeout_ms
                .map(|ms| Duration::from_millis(ms.saturating_mul(scale))),
            options
                .kernel_prover_attempts
                .map(|n| n.saturating_mul(scale)),
            options.kernel_fuel.map(|n| n.saturating_mul(scale)),
        );
        let stng = Stng {
            config: options.config.clone(),
            cache: Some(Arc::clone(cache) as Arc<dyn stng::LiftCache>),
            budget,
        };
        match catch_unwind(AssertUnwindSafe(|| stng.lift_source(&src.source))) {
            Ok(Ok(lift)) => {
                let cut_short = lift.kernels.iter().any(|k| k.outcome.is_budget_affected());
                if !cut_short {
                    return SourceOutcome::Lifted(lift);
                }
                last = Some(SourceOutcome::Lifted(lift));
            }
            // A parse/classification error is deterministic: no retry.
            Ok(Err(e)) => return SourceOutcome::SourceError(e),
            Err(payload) => last = Some(SourceOutcome::Crashed(panic_text(&*payload))),
        }
    }
    last.unwrap_or_else(|| {
        SourceOutcome::Crashed("lift skipped: batch deadline exhausted".to_string())
    })
}

/// A per-source row with no real pipeline report behind it (source errors,
/// empty sources, crashed lifts).
fn synthetic_row(src: &BatchSource, tag: &str, ms: f64, outcome: KernelOutcome) -> BatchKernel {
    BatchKernel {
        source_name: src.name.clone(),
        kernel_name: format!("{}:{tag}", src.name),
        fingerprint: None,
        lift_ms: ms,
        report: KernelReport {
            name: src.name.clone(),
            kernel: None,
            outcome,
            synthesis_time: std::time::Duration::ZERO,
            control_bits: Default::default(),
            postcond_nodes: 0,
            prover_attempts: 0,
            peak_candidates: 0,
            fingerprint: None,
            cached: false,
            phase: Default::default(),
        },
    }
}

fn run_pass(
    number: usize,
    sources: &[BatchSource],
    cache: &Arc<PipelineCache>,
    options: &BatchOptions,
    batch_budget: &Budget,
) -> BatchPass {
    let stats_before = cache.stats();
    let started = Instant::now();
    // One unit per source: kernels inside a source stay sequential (they
    // share the fragment classification), sources fan out across workers.
    // Unreadable sources short-circuit into an error row downstream.
    let lifted = parallel::map(sources, options.threads, |src| {
        let t = Instant::now();
        let outcome = lift_source_governed(src, cache, options, batch_budget);
        (outcome, t.elapsed().as_secs_f64() * 1e3)
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut kernels = Vec::new();
    for (src, (outcome, ms)) in sources.iter().zip(lifted) {
        match outcome {
            SourceOutcome::Lifted(lift) => {
                // A source that parses but offers no candidate loop nests
                // gets an explicit row (mirroring the parse-failure row
                // below), so coverage audits can tell "processed, nothing
                // to lift" from "never processed".
                if lift.kernels.is_empty() {
                    kernels.push(synthetic_row(
                        src,
                        "<no candidates>",
                        ms,
                        KernelOutcome::Untranslated {
                            reason: format!(
                                "source contains no candidate kernels \
                                 ({} outermost loop(s) skipped by the identifier)",
                                lift.skipped_loops
                            ),
                        },
                    ));
                    continue;
                }
                let n = lift.kernels.len() as f64;
                for k in lift.kernels {
                    kernels.push(BatchKernel {
                        source_name: src.name.clone(),
                        kernel_name: k.name.clone(),
                        fingerprint: k.fingerprint.clone(),
                        lift_ms: ms / n,
                        report: k,
                    });
                }
            }
            SourceOutcome::SourceError(source_error) => {
                // A malformed or unreadable source yields one synthetic
                // untranslated row so it is visible in the report rather
                // than dropped.
                kernels.push(synthetic_row(
                    src,
                    "<error>",
                    ms,
                    KernelOutcome::Untranslated {
                        reason: source_error,
                    },
                ));
            }
            SourceOutcome::Crashed(panic) => {
                // The lift panicked on every attempt: record the crash as
                // its own row so the batch report stays complete.
                kernels.push(synthetic_row(
                    src,
                    "<crashed>",
                    ms,
                    KernelOutcome::Crashed { panic },
                ));
            }
        }
    }

    let arena_entries_before_sweep = memory::sweepable_entries();
    let sweep = options.sweep_between.then(memory::sweep);
    BatchPass {
        number,
        wall_ms,
        kernels,
        cache: cache.stats().since(&stats_before),
        arena_entries_before_sweep,
        sweep,
        arena_entries_after_sweep: memory::sweepable_entries(),
    }
}

/// Loads sources from the built-in benchmark corpus.
pub fn corpus_sources() -> Vec<BatchSource> {
    stng_corpus::all_kernels()
        .into_iter()
        .map(|k| BatchSource::new(k.name, k.source))
        .collect()
}

/// Loads every regular file of `dir` (non-recursive, sorted by name) as a
/// source. Files that cannot be read as UTF-8 text (stray binaries, bad
/// permissions) become error-carrying sources rather than aborting the
/// batch; only the directory listing itself is fatal.
pub fn dir_sources(dir: &std::path::Path) -> std::io::Result<Vec<BatchSource>> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    Ok(paths
        .into_iter()
        .map(|p| {
            let name = p.display().to_string();
            match std::fs::read_to_string(&p) {
                Ok(source) => BatchSource::new(name, source),
                Err(e) => BatchSource {
                    name,
                    source: String::new(),
                    read_error: Some(e.to_string()),
                },
            }
        })
        .collect())
}

/// Loads sources from a manifest: one file path per line (relative to the
/// manifest's directory), `#` comments and blank lines ignored.
pub fn manifest_sources(manifest: &std::path::Path) -> std::io::Result<Vec<BatchSource>> {
    let base = manifest.parent().unwrap_or(std::path::Path::new("."));
    let mut out = Vec::new();
    for line in std::fs::read_to_string(manifest)?.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Manifest entries are explicit requests: a missing or unreadable
        // listed file is an error, unlike the permissive directory scan.
        let path = base.join(line);
        out.push(BatchSource::new(
            path.display().to_string(),
            std::fs::read_to_string(&path)?,
        ));
    }
    Ok(out)
}
