//! JSON (de)serialization of cached lifting results.
//!
//! Expressions are encoded as tagged arrays (`["bin","+",lhs,rhs]`), which
//! keeps entries compact and the decoder a direct match on the tag. Floats
//! use Rust's shortest round-trippable `{}` form, so stencil coefficients
//! survive a disk round trip bit-for-bit; the structures reload to values
//! that compare `==` to the originals (the round-trip test in
//! `tests/cache_roundtrip.rs` pins the whole path down).

use crate::json::{nu, obj, s, Json};
use stng_ir::ir::{BinOp, CmpOp, IrExpr};
use stng_pred::lang::{OutEq, Postcondition, QuantBound, QuantClause};
use stng_synth::{ControlBits, PhaseTimings};

type DecodeResult<T> = Result<T, String>;

fn field<'a>(v: &'a Json, key: &str) -> DecodeResult<&'a Json> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn usize_field(v: &Json, key: &str) -> DecodeResult<usize> {
    field(v, key)?
        .as_u64()
        .map(|x| x as usize)
        .ok_or_else(|| format!("field '{key}' is not an unsigned integer"))
}

// ---------------------------------------------------------------- IrExpr --

fn bin_op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
    }
}

fn bin_op_from(text: &str) -> DecodeResult<BinOp> {
    Ok(match text {
        "+" => BinOp::Add,
        "-" => BinOp::Sub,
        "*" => BinOp::Mul,
        "/" => BinOp::Div,
        other => return Err(format!("unknown binary operator {other:?}")),
    })
}

fn cmp_op_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
    }
}

fn cmp_op_from(text: &str) -> DecodeResult<CmpOp> {
    Ok(match text {
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        "==" => CmpOp::Eq,
        "!=" => CmpOp::Ne,
        other => return Err(format!("unknown comparison operator {other:?}")),
    })
}

/// Encodes an [`IrExpr`] as a tagged array.
pub fn encode_expr(e: &IrExpr) -> Json {
    match e {
        IrExpr::Int(v) => Json::Arr(vec![s("int"), Json::Num(*v as f64)]),
        IrExpr::Real(v) => Json::Arr(vec![s("real"), Json::Num(*v)]),
        IrExpr::Var(name) => Json::Arr(vec![s("var"), s(name.clone())]),
        IrExpr::Load { array, indices } => Json::Arr(vec![
            s("load"),
            s(array.clone()),
            Json::Arr(indices.iter().map(encode_expr).collect()),
        ]),
        IrExpr::Bin { op, lhs, rhs } => Json::Arr(vec![
            s("bin"),
            s(bin_op_str(*op)),
            encode_expr(lhs),
            encode_expr(rhs),
        ]),
        IrExpr::Call { func, args } => Json::Arr(vec![
            s("call"),
            s(func.clone()),
            Json::Arr(args.iter().map(encode_expr).collect()),
        ]),
        IrExpr::Cmp { op, lhs, rhs } => Json::Arr(vec![
            s("cmp"),
            s(cmp_op_str(*op)),
            encode_expr(lhs),
            encode_expr(rhs),
        ]),
        IrExpr::And(a, b) => Json::Arr(vec![s("and"), encode_expr(a), encode_expr(b)]),
        IrExpr::Or(a, b) => Json::Arr(vec![s("or"), encode_expr(a), encode_expr(b)]),
        IrExpr::Not(e) => Json::Arr(vec![s("not"), encode_expr(e)]),
    }
}

/// Decodes an [`IrExpr`] from its tagged-array encoding.
pub fn decode_expr(v: &Json) -> DecodeResult<IrExpr> {
    let parts = v.as_arr().ok_or("expression must be an array")?;
    let tag = parts
        .first()
        .and_then(Json::as_str)
        .ok_or("expression missing tag")?;
    let arity = |n: usize| -> DecodeResult<()> {
        if parts.len() == n + 1 {
            Ok(())
        } else {
            Err(format!("tag {tag:?} expects {n} operands"))
        }
    };
    let expr_at = |k: usize| decode_expr(&parts[k]);
    let str_at = |k: usize| -> DecodeResult<&str> {
        parts[k]
            .as_str()
            .ok_or_else(|| format!("tag {tag:?} operand {k} must be a string"))
    };
    let list_at = |k: usize| -> DecodeResult<Vec<IrExpr>> {
        parts[k]
            .as_arr()
            .ok_or_else(|| format!("tag {tag:?} operand {k} must be an array"))?
            .iter()
            .map(decode_expr)
            .collect()
    };
    Ok(match tag {
        "int" => {
            arity(1)?;
            IrExpr::Int(
                parts[1]
                    .as_i64()
                    .ok_or("int literal out of range or fractional")?,
            )
        }
        "real" => {
            arity(1)?;
            IrExpr::Real(parts[1].as_f64().ok_or("real literal must be a number")?)
        }
        "var" => {
            arity(1)?;
            IrExpr::Var(str_at(1)?.to_string())
        }
        "load" => {
            arity(2)?;
            IrExpr::Load {
                array: str_at(1)?.to_string(),
                indices: list_at(2)?,
            }
        }
        "bin" => {
            arity(3)?;
            IrExpr::Bin {
                op: bin_op_from(str_at(1)?)?,
                lhs: Box::new(expr_at(2)?),
                rhs: Box::new(expr_at(3)?),
            }
        }
        "call" => {
            arity(2)?;
            IrExpr::Call {
                func: str_at(1)?.to_string(),
                args: list_at(2)?,
            }
        }
        "cmp" => {
            arity(3)?;
            IrExpr::Cmp {
                op: cmp_op_from(str_at(1)?)?,
                lhs: Box::new(expr_at(2)?),
                rhs: Box::new(expr_at(3)?),
            }
        }
        "and" => {
            arity(2)?;
            IrExpr::And(Box::new(expr_at(1)?), Box::new(expr_at(2)?))
        }
        "or" => {
            arity(2)?;
            IrExpr::Or(Box::new(expr_at(1)?), Box::new(expr_at(2)?))
        }
        "not" => {
            arity(1)?;
            IrExpr::Not(Box::new(expr_at(1)?))
        }
        other => return Err(format!("unknown expression tag {other:?}")),
    })
}

// --------------------------------------------------------- Postcondition --

fn encode_bound(b: &QuantBound) -> Json {
    obj(vec![
        ("var", s(b.var.clone())),
        ("lo", encode_expr(&b.lo)),
        ("lo_strict", Json::Bool(b.lo_strict)),
        ("hi", encode_expr(&b.hi)),
        ("hi_strict", Json::Bool(b.hi_strict)),
        ("step", Json::Num(b.step as f64)),
    ])
}

fn decode_bound(v: &Json) -> DecodeResult<QuantBound> {
    Ok(QuantBound {
        var: field(v, "var")?.as_str().ok_or("bound var")?.to_string(),
        lo: decode_expr(field(v, "lo")?)?,
        lo_strict: field(v, "lo_strict")?.as_bool().ok_or("bound lo_strict")?,
        hi: decode_expr(field(v, "hi")?)?,
        hi_strict: field(v, "hi_strict")?.as_bool().ok_or("bound hi_strict")?,
        step: field(v, "step")?.as_i64().ok_or("bound step")?,
    })
}

fn encode_clause(c: &QuantClause) -> Json {
    obj(vec![
        (
            "bounds",
            Json::Arr(c.bounds.iter().map(encode_bound).collect()),
        ),
        ("array", s(c.eq.array.clone())),
        (
            "indices",
            Json::Arr(c.eq.indices.iter().map(encode_expr).collect()),
        ),
        ("rhs", encode_expr(&c.eq.rhs)),
    ])
}

fn decode_clause(v: &Json) -> DecodeResult<QuantClause> {
    Ok(QuantClause {
        bounds: field(v, "bounds")?
            .as_arr()
            .ok_or("clause bounds")?
            .iter()
            .map(decode_bound)
            .collect::<DecodeResult<_>>()?,
        eq: OutEq {
            array: field(v, "array")?
                .as_str()
                .ok_or("clause array")?
                .to_string(),
            indices: field(v, "indices")?
                .as_arr()
                .ok_or("clause indices")?
                .iter()
                .map(decode_expr)
                .collect::<DecodeResult<_>>()?,
            rhs: decode_expr(field(v, "rhs")?)?,
        },
    })
}

/// Encodes a [`Postcondition`].
pub fn encode_post(p: &Postcondition) -> Json {
    Json::Arr(p.clauses.iter().map(encode_clause).collect())
}

/// Decodes a [`Postcondition`].
pub fn decode_post(v: &Json) -> DecodeResult<Postcondition> {
    Ok(Postcondition {
        clauses: v
            .as_arr()
            .ok_or("postcondition must be an array of clauses")?
            .iter()
            .map(decode_clause)
            .collect::<DecodeResult<_>>()?,
    })
}

// ------------------------------------------------------------ CachedLift --

/// The persisted payload of one lifting-cache entry, in **canonical** symbol
/// names (see `stng_ir::canon`): everything needed to rebuild a
/// `KernelReport` for any alpha-variant of the fingerprinted kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedLift {
    /// Canonical text of the kernel; stored so a (vanishingly unlikely)
    /// fingerprint collision is detected instead of served.
    pub canon_text: String,
    /// Whether the kernel lifted.
    pub translated: bool,
    /// The synthesized postcondition, canonical names (`translated` only).
    pub post: Option<Postcondition>,
    /// Untranslated reason. Identifiers quoted as `'name'` are stored in
    /// canonical form and rewritten into the requesting kernel's names on a
    /// hit; unquoted prose is kept verbatim.
    pub reason: Option<String>,
    /// Whether the summary carries a full soundness proof.
    pub soundly_verified: bool,
    /// CEGIS iterations of the original lift.
    pub cegis_iterations: usize,
    /// Wall-clock synthesis time of the original lift, in nanoseconds.
    pub synthesis_time_ns: u64,
    /// Control bits of the synthesis encoding.
    pub control_bits: ControlBits,
    /// Postcondition AST-node count.
    pub postcond_nodes: usize,
    /// Prover attempts on the accepted candidate.
    pub prover_attempts: usize,
    /// Peak CEGIS candidate-set size.
    pub peak_candidates: usize,
    /// Per-phase checking times and capture counter of the original lift.
    pub phase: PhaseTimings,
}

fn encode_control_bits(b: &ControlBits) -> Json {
    obj(vec![
        ("index", nu(b.index_bits)),
        ("const", nu(b.const_bits)),
        ("bound", nu(b.bound_bits)),
        ("invariant", nu(b.invariant_bits)),
        ("conditional", nu(b.conditional_bits)),
    ])
}

fn decode_control_bits(v: &Json) -> DecodeResult<ControlBits> {
    Ok(ControlBits {
        index_bits: usize_field(v, "index")?,
        const_bits: usize_field(v, "const")?,
        bound_bits: usize_field(v, "bound")?,
        invariant_bits: usize_field(v, "invariant")?,
        conditional_bits: usize_field(v, "conditional")?,
    })
}

fn encode_phase(p: &PhaseTimings) -> Json {
    obj(vec![
        ("capture_ns", Json::Num(p.capture_ns as f64)),
        ("bounded_ns", Json::Num(p.bounded_ns as f64)),
        ("prove_ns", Json::Num(p.prove_ns as f64)),
        ("captures", nu(p.captures)),
        ("oblig_hits", Json::Num(p.oblig_hits as f64)),
        ("oblig_misses", Json::Num(p.oblig_misses as f64)),
        ("core_hits", Json::Num(p.core_hits as f64)),
        ("screened", Json::Num(p.screened as f64)),
        ("survivors", Json::Num(p.survivors as f64)),
        ("batch_scans", Json::Num(p.batch_scans as f64)),
    ])
}

fn decode_phase(v: &Json) -> DecodeResult<PhaseTimings> {
    Ok(PhaseTimings {
        capture_ns: field(v, "capture_ns")?.as_u64().ok_or("capture_ns")?,
        bounded_ns: field(v, "bounded_ns")?.as_u64().ok_or("bounded_ns")?,
        prove_ns: field(v, "prove_ns")?.as_u64().ok_or("prove_ns")?,
        captures: usize_field(v, "captures")?,
        oblig_hits: field(v, "oblig_hits")?.as_u64().ok_or("oblig_hits")?,
        oblig_misses: field(v, "oblig_misses")?.as_u64().ok_or("oblig_misses")?,
        core_hits: field(v, "core_hits")?.as_u64().ok_or("core_hits")?,
        screened: field(v, "screened")?.as_u64().ok_or("screened")?,
        survivors: field(v, "survivors")?.as_u64().ok_or("survivors")?,
        batch_scans: field(v, "batch_scans")?.as_u64().ok_or("batch_scans")?,
    })
}

/// Current on-disk schema version; bump on any encoding change so stale
/// files read as misses instead of decode errors. Schema 3 added the
/// checksum-line framing around the document (see `cache::decode_checked`);
/// schema 4 added the prover memo/core counters to the phase block;
/// schema 5 added the adaptive bounded-screen counters
/// (screened/survivors/batch_scans).
pub const SCHEMA: u64 = 5;

/// Encodes a cache entry into its on-disk JSON document.
pub fn encode_entry(e: &CachedLift) -> Json {
    let mut fields = vec![
        ("schema", Json::Num(SCHEMA as f64)),
        ("canon_text", s(e.canon_text.clone())),
        ("translated", Json::Bool(e.translated)),
    ];
    if let Some(post) = &e.post {
        fields.push(("post", encode_post(post)));
    }
    if let Some(reason) = &e.reason {
        fields.push(("reason", s(reason.clone())));
    }
    fields.extend([
        ("soundly_verified", Json::Bool(e.soundly_verified)),
        ("cegis_iterations", nu(e.cegis_iterations)),
        ("synthesis_time_ns", Json::Num(e.synthesis_time_ns as f64)),
        ("control_bits", encode_control_bits(&e.control_bits)),
        ("postcond_nodes", nu(e.postcond_nodes)),
        ("prover_attempts", nu(e.prover_attempts)),
        ("peak_candidates", nu(e.peak_candidates)),
        ("phase", encode_phase(&e.phase)),
    ]);
    obj(fields)
}

/// Decodes a cache entry from its on-disk JSON document.
pub fn decode_entry(v: &Json) -> DecodeResult<CachedLift> {
    let schema = field(v, "schema")?.as_u64().ok_or("schema")?;
    if schema != SCHEMA {
        return Err(format!("unsupported cache schema {schema}"));
    }
    Ok(CachedLift {
        canon_text: field(v, "canon_text")?
            .as_str()
            .ok_or("canon_text")?
            .to_string(),
        translated: field(v, "translated")?.as_bool().ok_or("translated")?,
        post: v.get("post").map(decode_post).transpose()?,
        reason: v
            .get("reason")
            .map(|r| r.as_str().map(str::to_string).ok_or("reason"))
            .transpose()?,
        soundly_verified: field(v, "soundly_verified")?
            .as_bool()
            .ok_or("soundly_verified")?,
        cegis_iterations: usize_field(v, "cegis_iterations")?,
        synthesis_time_ns: field(v, "synthesis_time_ns")?
            .as_u64()
            .ok_or("synthesis_time_ns")?,
        control_bits: decode_control_bits(field(v, "control_bits")?)?,
        postcond_nodes: usize_field(v, "postcond_nodes")?,
        prover_attempts: usize_field(v, "prover_attempts")?,
        peak_candidates: usize_field(v, "peak_candidates")?,
        phase: decode_phase(field(v, "phase")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_post() -> Postcondition {
        let rhs = IrExpr::add(
            IrExpr::mul(
                IrExpr::Real(0.25),
                IrExpr::Load {
                    array: "p1".into(),
                    indices: vec![IrExpr::sub(IrExpr::var("q0"), IrExpr::Int(1))],
                },
            ),
            IrExpr::Call {
                func: "exp".into(),
                args: vec![IrExpr::var("p3")],
            },
        );
        Postcondition {
            clauses: vec![QuantClause {
                bounds: vec![QuantBound::strided(
                    "q0",
                    IrExpr::Int(1),
                    IrExpr::sub(IrExpr::var("p0"), IrExpr::Int(1)),
                    2,
                )],
                eq: OutEq {
                    array: "p2".into(),
                    indices: vec![IrExpr::var("q0")],
                    rhs,
                },
            }],
        }
    }

    #[test]
    fn expressions_round_trip() {
        let e = IrExpr::And(
            Box::new(IrExpr::cmp(CmpOp::Le, IrExpr::var("i"), IrExpr::Int(7))),
            Box::new(IrExpr::Not(Box::new(IrExpr::Or(
                Box::new(IrExpr::cmp(
                    CmpOp::Ne,
                    IrExpr::Real(-0.0416),
                    IrExpr::var("x"),
                )),
                Box::new(IrExpr::bin(BinOp::Div, IrExpr::var("a"), IrExpr::Int(-3))),
            )))),
        );
        let back = decode_expr(&Json::parse(&encode_expr(&e).to_string()).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn entries_round_trip_through_text() {
        let entry = CachedLift {
            canon_text: "params: p0:int\nlocals: l0:int\nbody:(loop …)\n".to_string(),
            translated: true,
            post: Some(sample_post()),
            reason: None,
            soundly_verified: true,
            cegis_iterations: 3,
            synthesis_time_ns: 123_456_789,
            control_bits: ControlBits {
                index_bits: 10,
                const_bits: 4,
                bound_bits: 3,
                invariant_bits: 2,
                conditional_bits: 0,
            },
            postcond_nodes: 42,
            prover_attempts: 17,
            peak_candidates: 9,
            phase: PhaseTimings {
                capture_ns: 1_000_000,
                bounded_ns: 2_000_000,
                prove_ns: 3_000_000,
                captures: 6,
                oblig_hits: 120,
                oblig_misses: 40,
                core_hits: 7,
                screened: 11,
                survivors: 2,
                batch_scans: 33,
            },
        };
        let text = encode_entry(&entry).to_string();
        let back = decode_entry(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, entry);

        let failed = CachedLift {
            translated: false,
            post: None,
            reason: Some("loop over 'k' is decrementing (step -1)".to_string()),
            ..entry
        };
        let text = encode_entry(&failed).to_string();
        assert_eq!(decode_entry(&Json::parse(&text).unwrap()).unwrap(), failed);
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let mut doc = encode_entry(&CachedLift {
            canon_text: String::new(),
            translated: false,
            post: None,
            reason: Some("r".into()),
            soundly_verified: false,
            cegis_iterations: 0,
            synthesis_time_ns: 0,
            control_bits: ControlBits::default(),
            postcond_nodes: 0,
            prover_attempts: 0,
            peak_candidates: 0,
            phase: PhaseTimings::default(),
        });
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::Num(99.0);
        }
        assert!(decode_entry(&doc).is_err());
    }
}
