//! Test harness over the deterministic fault-injection registry
//! (`stng_intern::guard::fault`). Only compiled with the `fault-inject`
//! feature — the injection *points* are always compiled in (and cost one
//! relaxed atomic load while disarmed), but the machinery to arm them
//! ships only to tests.
//!
//! The registry is process-global, so two tests arming different plans at
//! once would see each other's faults. [`armed`] therefore hands out an
//! RAII guard that holds a global lock for the duration of the chaos run
//! and disarms the registry on drop (including on panic/failed assert).

use std::sync::{Mutex, MutexGuard};
use stng_intern::guard::fault::{self, FaultPlan, Injected};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Holds the chaos lock with the registry armed; disarms on drop.
pub struct ChaosGuard {
    _lock: MutexGuard<'static, ()>,
}

impl ChaosGuard {
    /// Faults injected since this guard armed the registry.
    pub fn injected(&self) -> Injected {
        fault::injected()
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        fault::disarm();
    }
}

/// Arms `plan` and returns the guard keeping it armed. Serializes against
/// every other chaos run in the process.
pub fn armed(plan: FaultPlan) -> ChaosGuard {
    // A previous test panicking while holding the lock poisons it; the
    // protected state (the registry) is reset by arm(), so recovery is safe.
    let lock = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fault::arm(plan);
    ChaosGuard { _lock: lock }
}
