//! `stng-service`: the production-service layer over the lifting pipeline.
//!
//! The paper lifts each kernel once; a lifting *service* sees thousands of
//! near-duplicate kernels that differ only by renaming and formatting, and
//! must run indefinitely without its global expression arenas growing
//! without bound. This crate adds the three pieces that make the pipeline
//! operable at that scale:
//!
//! * **Structural fingerprinting** (`stng_ir::canon`, re-exported here) —
//!   a canonical hash over the alpha-renamed IR + iteration domains, so a
//!   renamed or re-whitespaced `heat0` maps to the same cache key.
//! * **A two-tier result cache** ([`cache`]) — sharded in-memory LRU over
//!   an optional on-disk JSON store, keyed by fingerprint + configuration
//!   digest, holding the full lifting outcome (postcondition, proof status,
//!   metrics) in canonical names, rehydrated into the requesting kernel's
//!   own vocabulary on every hit.
//! * **A batch driver** ([`batch`], and the `stng-batch` binary) — lifts a
//!   directory/manifest/corpus of sources through the cache with the
//!   existing scoped-thread parallelism, sweeps the expression arenas
//!   between batches (`stng::memory`), and emits per-kernel JSON reports
//!   plus cache and arena occupancy counters.
//!
//! * **Resource governance and fault tolerance** — batches run under a
//!   wall-clock/fuel/prover [`stng::guard::Budget`] with per-source child
//!   budgets, escalating-budget retries, and panic isolation; the disk
//!   cache checksums, quarantines, and retries its way around a flaky
//!   filesystem. The `fault-inject` feature compiles the [`chaos`] harness
//!   that deterministically exercises all of it.
//!
//! See `docs/service.md` for the cache design, the fingerprint definition,
//! and the eviction policy, and `docs/robustness.md` for the degradation
//! ladder and the fault-injection story.

pub mod batch;
pub mod cache;
#[cfg(feature = "fault-inject")]
pub mod chaos;
pub mod codec;
pub mod json;

pub use batch::{run_batch, BatchOptions, BatchReport, BatchSource};
pub use cache::{config_digest, CacheKey, CacheStats, LiftResultCache, PipelineCache};
pub use codec::CachedLift;
pub use stng_ir::canon;
