//! `stng-batch`: batch lifting driver over the fingerprint-keyed cache.
//!
//! ```text
//! stng-batch --corpus --passes 2 --check-warm
//! stng-batch --dir legacy/src --cache-dir .stng-cache --json report.json
//! stng-batch --manifest kernels.txt --no-sweep --threads 4
//! ```
//!
//! Flags:
//!
//! * `--corpus` — lift the built-in benchmark corpus (default when no
//!   source option is given).
//! * `--dir <path>` — lift every file in a directory (non-recursive).
//! * `--manifest <path>` — lift the files listed in a manifest (one path
//!   per line, `#` comments).
//! * `--passes <n>` — number of passes over the sources (default 1; pass
//!   2+ exercises the warm cache).
//! * `--cache-dir <path>` — enable the persistent disk tier.
//! * `--mem-capacity <n>` — memory-tier capacity in entries (default 4096).
//! * `--threads <n>` — lifting worker threads (default: all cores).
//! * `--no-sweep` — keep the expression arenas between passes.
//! * `--profile` — print a per-kernel phase-breakdown table for the final
//!   pass (capture / bounded / prove times plus the prover's obligation-memo
//!   and learned-core hit rates), so prover wins are visible without
//!   parsing the JSON report.
//! * `--json <path>` — write the full per-kernel report as JSON.
//! * `--deadline-ms <n>` — wall-clock budget for the whole batch; once it
//!   is gone, remaining kernels report as timed out instead of running.
//! * `--kernel-timeout-ms <n>` — wall-clock budget per source, doubled on
//!   each retry.
//! * `--retries <n>` — re-lift a source that crashed or was cut short by
//!   its per-source budget, with the budget doubled each attempt.
//! * `--check-warm` — exit non-zero unless the final pass had a 100% cache
//!   hit rate, ran faster than the first, and reproduced the first pass's
//!   outcomes exactly (requires `--passes >= 2`). This is the CI
//!   cache-smoke gate.

use std::process::ExitCode;
use stng::memory;
use stng_service::batch::{self, BatchOptions, BatchSource};

struct Args {
    sources: Vec<BatchSource>,
    options: BatchOptions,
    json_out: Option<std::path::PathBuf>,
    check_warm: bool,
    profile: bool,
}

fn usage(err: &str) -> ExitCode {
    eprintln!("stng-batch: {err}");
    eprintln!(
        "usage: stng-batch [--corpus | --dir <path> | --manifest <path>] \
         [--passes <n>] [--cache-dir <path>] [--mem-capacity <n>] \
         [--threads <n>] [--no-sweep] [--profile] [--json <path>] \
         [--check-warm] [--deadline-ms <n>] [--kernel-timeout-ms <n>] \
         [--retries <n>]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut raw = std::env::args().skip(1);
    let mut sources: Option<Vec<BatchSource>> = None;
    let mut options = BatchOptions::default();
    let mut json_out = None;
    let mut check_warm = false;
    let mut profile = false;

    let next_value = |flag: &str, raw: &mut dyn Iterator<Item = String>| {
        raw.next().ok_or(format!("{flag} requires a value"))
    };

    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--corpus" => sources = Some(batch::corpus_sources()),
            "--dir" => {
                let dir = next_value("--dir", &mut raw)?;
                sources = Some(
                    batch::dir_sources(std::path::Path::new(&dir))
                        .map_err(|e| format!("--dir {dir}: {e}"))?,
                );
            }
            "--manifest" => {
                let path = next_value("--manifest", &mut raw)?;
                sources = Some(
                    batch::manifest_sources(std::path::Path::new(&path))
                        .map_err(|e| format!("--manifest {path}: {e}"))?,
                );
            }
            "--passes" => {
                options.passes = next_value("--passes", &mut raw)?
                    .parse()
                    .map_err(|e| format!("--passes: {e}"))?;
                if options.passes == 0 {
                    return Err("--passes must be at least 1".to_string());
                }
            }
            "--cache-dir" => {
                options.cache_dir = Some(next_value("--cache-dir", &mut raw)?.into());
            }
            "--mem-capacity" => {
                options.mem_capacity = next_value("--mem-capacity", &mut raw)?
                    .parse()
                    .map_err(|e| format!("--mem-capacity: {e}"))?;
            }
            "--threads" => {
                options.threads = next_value("--threads", &mut raw)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--deadline-ms" => {
                options.deadline_ms = Some(
                    next_value("--deadline-ms", &mut raw)?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
            "--kernel-timeout-ms" => {
                options.kernel_timeout_ms = Some(
                    next_value("--kernel-timeout-ms", &mut raw)?
                        .parse()
                        .map_err(|e| format!("--kernel-timeout-ms: {e}"))?,
                );
            }
            "--retries" => {
                options.retries = next_value("--retries", &mut raw)?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--no-sweep" => options.sweep_between = false,
            "--profile" => profile = true,
            "--json" => json_out = Some(next_value("--json", &mut raw)?.into()),
            "--check-warm" => check_warm = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    if check_warm && options.passes < 2 {
        return Err("--check-warm requires --passes >= 2".to_string());
    }
    Ok(Args {
        sources: sources.unwrap_or_else(batch::corpus_sources),
        options,
        json_out,
        check_warm,
        profile,
    })
}

/// `--profile`: per-kernel phase breakdown of the final pass. Cache-served
/// rows replay the original lift's phase counters, so on a warm pass the
/// table shows what the lift cost when it actually ran.
fn print_profile(pass: &stng_service::batch::BatchPass) {
    println!(
        "\nprofile (pass {}): per-kernel phase breakdown\n\
         {:<24} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6}",
        pass.number,
        "kernel",
        "lift_ms",
        "capt_ms",
        "bound_ms",
        "prove_ms",
        "memo%",
        "oblig",
        "cores"
    );
    let mut totals = (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0u64, 0u64, 0u64);
    for k in &pass.kernels {
        let p = &k.report.phase;
        let rate = p
            .oblig_hit_rate()
            .map(|r| format!("{:.1}", r * 100.0))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<24} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>7} {:>7} {:>6}",
            k.kernel_name,
            k.lift_ms,
            p.capture_ms(),
            p.bounded_ms(),
            p.prove_ms(),
            rate,
            p.oblig_hits + p.oblig_misses,
            p.core_hits,
        );
        totals.0 += k.lift_ms;
        totals.1 += p.capture_ms();
        totals.2 += p.bounded_ms();
        totals.3 += p.prove_ms();
        totals.4 += p.oblig_hits;
        totals.5 += p.oblig_misses;
        totals.6 += p.core_hits;
    }
    let total_oblig = totals.4 + totals.5;
    let rate = if total_oblig > 0 {
        format!("{:.1}", totals.4 as f64 * 100.0 / total_oblig as f64)
    } else {
        "-".to_string()
    };
    println!(
        "{:<24} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>7} {:>7} {:>6}",
        "total", totals.0, totals.1, totals.2, totals.3, rate, total_oblig, totals.6
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => return usage(&e),
    };
    if args.sources.is_empty() {
        return usage("no sources to lift");
    }
    println!(
        "stng-batch: {} sources, {} pass(es), {} worker thread(s), cache {} (mem {} entries){}",
        args.sources.len(),
        args.options.passes,
        args.options.threads,
        match &args.options.cache_dir {
            Some(dir) => format!("mem+disk @ {}", dir.display()),
            None => "mem-only".to_string(),
        },
        args.options.mem_capacity,
        if args.options.sweep_between {
            ", sweeping arenas between passes"
        } else {
            ""
        },
    );

    let report = match batch::run_batch(&args.sources, &args.options) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("stng-batch: {e}");
            return ExitCode::FAILURE;
        }
    };

    for pass in &report.passes {
        let (translated, degraded, untranslated, timeout, crashed) = pass.summary();
        println!(
            "pass {}: {:.1} ms, {}/{} kernels translated, cache {} hits / {} misses \
             ({:.1}% hit rate, {} from disk), arenas {} entries -> swept {} -> {} entries",
            pass.number,
            pass.wall_ms,
            translated + degraded,
            pass.kernels.len(),
            pass.cache.hits,
            pass.cache.misses,
            pass.cache.hit_rate() * 100.0,
            pass.cache.disk_hits,
            pass.arena_entries_before_sweep,
            pass.sweep.map(|s| s.evicted).unwrap_or(0),
            pass.arena_entries_after_sweep,
        );
        // Degradation summary: only printed when governance actually bit,
        // so the zero-fault, unlimited-budget output is unchanged.
        if degraded + timeout + crashed > 0 {
            println!(
                "  degradation: {degraded} degraded (bounded-validated only), \
                 {timeout} timed out, {crashed} crashed, {untranslated} untranslated"
            );
        }
        if pass.cache.quarantined + pass.cache.io_retries > 0 {
            println!(
                "  disk faults: {} entr(ies) quarantined, {} read retr(ies)",
                pass.cache.quarantined, pass.cache.io_retries
            );
        }
    }
    if args.profile {
        if let Some(pass) = report.passes.last() {
            print_profile(pass);
        }
    }
    for stat in memory::arena_stats() {
        println!(
            "  arena {:<16} {:>8} entries  ~{} bytes",
            stat.name, stat.entries, stat.approx_bytes
        );
    }

    if let Some(path) = &args.json_out {
        if let Err(e) = std::fs::write(path, report.to_json().to_string() + "\n") {
            eprintln!("stng-batch: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }

    if args.check_warm {
        return check_warm_gate(&report);
    }
    ExitCode::SUCCESS
}

/// The CI cache-smoke gate: the warm (final) pass must hit on every lookup,
/// be faster than the cold (first) pass, and reproduce its outcomes.
fn check_warm_gate(report: &stng_service::BatchReport) -> ExitCode {
    let cold = report.passes.first().expect("passes >= 2 checked at parse");
    let warm = report.passes.last().expect("passes >= 2 checked at parse");
    let mut failures = Vec::new();

    if warm.cache.misses > 0 {
        failures.push(format!(
            "warm pass missed the cache {} time(s) (hit rate {:.1}% < 100%)",
            warm.cache.misses,
            warm.cache.hit_rate() * 100.0
        ));
    }
    if warm.cache.hits == 0 {
        // Distinguish "every lookup hit" from "nothing ever consulted the
        // cache" — a batch whose kernels all fail before fingerprinting
        // would otherwise pass the gate vacuously.
        failures.push("warm pass generated no cache lookups at all".to_string());
    }
    // The timing comparison only means something when pass 1 actually paid
    // for synthesis. With a pre-populated --cache-dir the first pass is
    // already warm (mostly hits), and warm-vs-warm wall time is a coin flip
    // — skip the check rather than fail spuriously.
    if cold.cache.hit_rate() < 0.5 {
        if warm.wall_ms >= cold.wall_ms {
            failures.push(format!(
                "warm pass was not faster than cold ({:.1} ms >= {:.1} ms)",
                warm.wall_ms, cold.wall_ms
            ));
        }
    } else {
        println!(
            "cache-smoke: first pass was already {:.0}% warm (pre-populated cache dir); \
             skipping the cold-vs-warm timing check",
            cold.cache.hit_rate() * 100.0
        );
    }
    if cold.kernels.len() != warm.kernels.len() {
        failures.push(format!(
            "kernel counts differ between passes ({} vs {})",
            cold.kernels.len(),
            warm.kernels.len()
        ));
    } else {
        for (c, w) in cold.kernels.iter().zip(&warm.kernels) {
            if c.report.outcome != w.report.outcome {
                failures.push(format!(
                    "outcome drift on {}: warm hit does not reproduce the cold report",
                    c.kernel_name
                ));
            }
        }
    }

    if failures.is_empty() {
        println!(
            "cache-smoke gate: warm pass 100% hits, {:.2}x faster than cold, outcomes identical",
            cold.wall_ms / warm.wall_ms
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("CACHE-SMOKE FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
