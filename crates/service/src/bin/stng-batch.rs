//! `stng-batch`: batch lifting driver over the fingerprint-keyed cache.
//!
//! ```text
//! stng-batch --corpus --passes 2 --check-warm
//! stng-batch --dir legacy/src --cache-dir .stng-cache --json report.json
//! stng-batch --manifest kernels.txt --no-sweep --threads 4
//! ```
//!
//! Flags:
//!
//! * `--corpus` — lift the built-in benchmark corpus (default when no
//!   source option is given).
//! * `--dir <path>` — lift every file in a directory (non-recursive).
//! * `--manifest <path>` — lift the files listed in a manifest (one path
//!   per line, `#` comments).
//! * `--passes <n>` — number of passes over the sources (default 1; pass
//!   2+ exercises the warm cache).
//! * `--cache-dir <path>` — enable the persistent disk tier.
//! * `--mem-capacity <n>` — memory-tier capacity in entries (default 4096).
//! * `--threads <n>` — lifting worker threads (default: all cores).
//! * `--no-sweep` — keep the expression arenas between passes.
//! * `--profile` — print a per-kernel phase-breakdown table for the final
//!   pass (capture / bounded / prove times plus the prover's obligation-memo
//!   and learned-core hit rates, the adaptive bounded screen's
//!   screened/survivor/batch-sweep counters, and whether the cache served
//!   the row), so prover and screen wins are visible without parsing the
//!   JSON report.
//! * `--json <path>` — write the full per-kernel report as JSON.
//! * `--trace-out <path>` — arm the span recorder for the whole batch and
//!   write a Chrome trace-event JSON file (loadable in Perfetto /
//!   `chrome://tracing`, one track per worker thread). The written trace is
//!   self-validated: it must parse and carry a `lift.kernel` span for every
//!   translated kernel.
//! * `--metrics-json <path>` — write a snapshot of the metrics registry
//!   (counters, time accumulators, arena gauges, histograms) as JSON.
//! * `--deadline-ms <n>` — wall-clock budget for the whole batch; once it
//!   is gone, remaining kernels report as timed out instead of running.
//! * `--kernel-timeout-ms <n>` — wall-clock budget per source, doubled on
//!   each retry.
//! * `--retries <n>` — re-lift a source that crashed or was cut short by
//!   its per-source budget, with the budget doubled each attempt.
//! * `--check-warm` — exit non-zero unless the final pass had a 100% cache
//!   hit rate, ran faster than the first, and reproduced the first pass's
//!   outcomes exactly (requires `--passes >= 2`). This is the CI
//!   cache-smoke gate.

use std::process::ExitCode;
use stng::memory;
use stng_service::batch::{self, BatchOptions, BatchSource};

struct Args {
    sources: Vec<BatchSource>,
    options: BatchOptions,
    json_out: Option<std::path::PathBuf>,
    trace_out: Option<std::path::PathBuf>,
    metrics_out: Option<std::path::PathBuf>,
    check_warm: bool,
    profile: bool,
}

fn usage(err: &str) -> ExitCode {
    eprintln!("stng-batch: {err}");
    eprintln!(
        "usage: stng-batch [--corpus | --dir <path> | --manifest <path>] \
         [--passes <n>] [--cache-dir <path>] [--mem-capacity <n>] \
         [--threads <n>] [--no-sweep] [--profile] [--json <path>] \
         [--trace-out <path>] [--metrics-json <path>] \
         [--check-warm] [--deadline-ms <n>] [--kernel-timeout-ms <n>] \
         [--retries <n>]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut raw = std::env::args().skip(1);
    let mut sources: Option<Vec<BatchSource>> = None;
    let mut options = BatchOptions::default();
    let mut json_out = None;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut check_warm = false;
    let mut profile = false;

    let next_value = |flag: &str, raw: &mut dyn Iterator<Item = String>| {
        raw.next().ok_or(format!("{flag} requires a value"))
    };

    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--corpus" => sources = Some(batch::corpus_sources()),
            "--dir" => {
                let dir = next_value("--dir", &mut raw)?;
                sources = Some(
                    batch::dir_sources(std::path::Path::new(&dir))
                        .map_err(|e| format!("--dir {dir}: {e}"))?,
                );
            }
            "--manifest" => {
                let path = next_value("--manifest", &mut raw)?;
                sources = Some(
                    batch::manifest_sources(std::path::Path::new(&path))
                        .map_err(|e| format!("--manifest {path}: {e}"))?,
                );
            }
            "--passes" => {
                options.passes = next_value("--passes", &mut raw)?
                    .parse()
                    .map_err(|e| format!("--passes: {e}"))?;
                if options.passes == 0 {
                    return Err("--passes must be at least 1".to_string());
                }
            }
            "--cache-dir" => {
                options.cache_dir = Some(next_value("--cache-dir", &mut raw)?.into());
            }
            "--mem-capacity" => {
                options.mem_capacity = next_value("--mem-capacity", &mut raw)?
                    .parse()
                    .map_err(|e| format!("--mem-capacity: {e}"))?;
            }
            "--threads" => {
                options.threads = next_value("--threads", &mut raw)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--deadline-ms" => {
                options.deadline_ms = Some(
                    next_value("--deadline-ms", &mut raw)?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
            "--kernel-timeout-ms" => {
                options.kernel_timeout_ms = Some(
                    next_value("--kernel-timeout-ms", &mut raw)?
                        .parse()
                        .map_err(|e| format!("--kernel-timeout-ms: {e}"))?,
                );
            }
            "--retries" => {
                options.retries = next_value("--retries", &mut raw)?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--no-sweep" => options.sweep_between = false,
            "--profile" => profile = true,
            "--json" => json_out = Some(next_value("--json", &mut raw)?.into()),
            "--trace-out" => trace_out = Some(next_value("--trace-out", &mut raw)?.into()),
            "--metrics-json" => metrics_out = Some(next_value("--metrics-json", &mut raw)?.into()),
            "--check-warm" => check_warm = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    if check_warm && options.passes < 2 {
        return Err("--check-warm requires --passes >= 2".to_string());
    }
    Ok(Args {
        sources: sources.unwrap_or_else(batch::corpus_sources),
        options,
        json_out,
        trace_out,
        metrics_out,
        check_warm,
        profile,
    })
}

/// `--profile`: per-kernel phase breakdown of the final pass. Cache-served
/// rows replay the original lift's phase counters, so on a warm pass the
/// table shows what the lift cost when it actually ran.
fn print_profile(pass: &stng_service::batch::BatchPass) {
    println!(
        "\nprofile (pass {}): per-kernel phase breakdown\n\
         {:<24} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6} {:>6} {:>5} {:>5} {:>6}",
        pass.number,
        "kernel",
        "lift_ms",
        "capt_ms",
        "bound_ms",
        "prove_ms",
        "memo%",
        "oblig",
        "cores",
        "screen",
        "surv",
        "bscan",
        "cached"
    );
    let mut total = stng_synth::PhaseTimings::default();
    let mut total_lift_ms = 0.0f64;
    let mut total_cached = 0usize;
    for k in &pass.kernels {
        let p = &k.report.phase;
        let rate = p
            .oblig_hit_rate()
            .map(|r| format!("{:.1}", r * 100.0))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<24} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>7} {:>7} {:>6} {:>6} {:>5} {:>5} {:>6}",
            k.kernel_name,
            k.lift_ms,
            p.capture_ms(),
            p.bounded_ms(),
            p.prove_ms(),
            rate,
            p.oblig_hits + p.oblig_misses,
            p.core_hits,
            p.screened,
            p.survivors,
            p.batch_scans,
            if k.report.cached { "yes" } else { "no" },
        );
        total_lift_ms += k.lift_ms;
        total_cached += k.report.cached as usize;
        total.absorb(p);
    }
    let rate = total
        .oblig_hit_rate()
        .map(|r| format!("{:.1}", r * 100.0))
        .unwrap_or_else(|| "-".to_string());
    println!(
        "{:<24} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>7} {:>7} {:>6} {:>6} {:>5} {:>5} {:>6}",
        "total",
        total_lift_ms,
        total.capture_ms(),
        total.bounded_ms(),
        total.prove_ms(),
        rate,
        total.oblig_hits + total.oblig_misses,
        total.core_hits,
        total.screened,
        total.survivors,
        total.batch_scans,
        format!("{}/{}", total_cached, pass.kernels.len()),
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => return usage(&e),
    };
    if args.sources.is_empty() {
        return usage("no sources to lift");
    }
    println!(
        "stng-batch: {} sources, {} pass(es), {} worker thread(s), cache {} (mem {} entries){}",
        args.sources.len(),
        args.options.passes,
        args.options.threads,
        match &args.options.cache_dir {
            Some(dir) => format!("mem+disk @ {}", dir.display()),
            None => "mem-only".to_string(),
        },
        args.options.mem_capacity,
        if args.options.sweep_between {
            ", sweeping arenas between passes"
        } else {
            ""
        },
    );

    // Arm the span recorder for the whole run: every pass, including warm
    // ones, then contributes `lift.kernel` spans to the exported trace.
    if args.trace_out.is_some() {
        stng::obs::recorder::reset();
        stng::obs::arm();
    }

    let report = match batch::run_batch(&args.sources, &args.options) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("stng-batch: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.trace_out.is_some() {
        stng::obs::disarm();
    }

    for pass in &report.passes {
        let (translated, degraded, untranslated, timeout, crashed) = pass.summary();
        println!(
            "pass {}: {:.1} ms, {}/{} kernels translated, cache {} hits / {} misses \
             ({:.1}% hit rate, {} from disk), arenas {} entries -> swept {} -> {} entries",
            pass.number,
            pass.wall_ms,
            translated + degraded,
            pass.kernels.len(),
            pass.cache.hits,
            pass.cache.misses,
            pass.cache.hit_rate() * 100.0,
            pass.cache.disk_hits,
            pass.arena_entries_before_sweep,
            pass.sweep.map(|s| s.evicted).unwrap_or(0),
            pass.arena_entries_after_sweep,
        );
        // Degradation summary: only printed when governance actually bit,
        // so the zero-fault, unlimited-budget output is unchanged.
        if degraded + timeout + crashed > 0 {
            println!(
                "  degradation: {degraded} degraded (bounded-validated only), \
                 {timeout} timed out, {crashed} crashed, {untranslated} untranslated"
            );
        }
        if pass.cache.quarantined + pass.cache.io_retries > 0 {
            println!(
                "  disk faults: {} entr(ies) quarantined, {} read retr(ies)",
                pass.cache.quarantined, pass.cache.io_retries
            );
        }
    }
    if args.profile {
        if let Some(pass) = report.passes.last() {
            print_profile(pass);
        }
    }
    for stat in memory::arena_stats() {
        println!(
            "  arena {:<16} {:>8} entries  ~{} bytes",
            stat.name, stat.entries, stat.approx_bytes
        );
    }

    if let Some(path) = &args.json_out {
        if let Err(e) = std::fs::write(path, report.to_json().to_string() + "\n") {
            eprintln!("stng-batch: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }

    if let Some(path) = &args.trace_out {
        if let Err(e) = write_trace(path, &report) {
            eprintln!("stng-batch: trace export: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = &args.metrics_out {
        // Publish the interner/expression arena occupancy as gauges right
        // before the snapshot, so the metrics file carries the same numbers
        // the table above printed.
        for stat in memory::arena_stats() {
            let entries = stng::obs::metrics::register_dynamic(
                &format!("arena.{}.entries", stat.name),
                stng::obs::metrics::MetricKind::Gauge,
            );
            entries.set(stat.entries as u64);
            let bytes = stng::obs::metrics::register_dynamic(
                &format!("arena.{}.approx_bytes", stat.name),
                stng::obs::metrics::MetricKind::Gauge,
            );
            bytes.set(stat.approx_bytes as u64);
        }
        let snapshot = stng::obs::metrics::snapshot_json();
        if let Err(e) = std::fs::write(path, snapshot + "\n") {
            eprintln!("stng-batch: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }

    if args.check_warm {
        return check_warm_gate(&report);
    }
    ExitCode::SUCCESS
}

/// `--trace-out`: export the recorded spans as Chrome trace-event JSON and
/// self-validate the file — it must parse back, and every kernel the batch
/// translated must have left at least one `lift.kernel` span. A trace that
/// silently dropped a kernel's spans is worse than no trace, so validation
/// failure fails the run.
fn write_trace(path: &std::path::Path, report: &stng_service::BatchReport) -> Result<(), String> {
    let threads = stng::obs::recorder::snapshot();
    let trace = stng::obs::chrome::trace_json(&threads);
    std::fs::write(path, &trace).map_err(|e| format!("writing {}: {e}", path.display()))?;

    let reread =
        std::fs::read_to_string(path).map_err(|e| format!("rereading {}: {e}", path.display()))?;
    stng_service::json::Json::parse(&reread)
        .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;

    let lifted: Vec<&'static str> = stng::obs::chrome::span_details(&threads, "lift.kernel");
    let mut missing = Vec::new();
    for pass in &report.passes {
        for k in &pass.kernels {
            if k.report.outcome.is_translated() && !lifted.contains(&k.report.name.as_str()) {
                missing.push(k.kernel_name.as_str());
            }
        }
    }
    missing.sort_unstable();
    missing.dedup();
    if !missing.is_empty() {
        return Err(format!(
            "{} translated kernel(s) left no lift.kernel span: {}",
            missing.len(),
            missing.join(", ")
        ));
    }

    let spans: usize = threads.len();
    println!(
        "wrote {} ({} thread track(s), {} lift.kernel span(s), all translated kernels covered)",
        path.display(),
        spans,
        lifted.len()
    );
    Ok(())
}

/// The CI cache-smoke gate: the warm (final) pass must hit on every lookup,
/// be faster than the cold (first) pass, and reproduce its outcomes.
fn check_warm_gate(report: &stng_service::BatchReport) -> ExitCode {
    let cold = report.passes.first().expect("passes >= 2 checked at parse");
    let warm = report.passes.last().expect("passes >= 2 checked at parse");
    let mut failures = Vec::new();

    if warm.cache.misses > 0 {
        failures.push(format!(
            "warm pass missed the cache {} time(s) (hit rate {:.1}% < 100%)",
            warm.cache.misses,
            warm.cache.hit_rate() * 100.0
        ));
    }
    if warm.cache.hits == 0 {
        // Distinguish "every lookup hit" from "nothing ever consulted the
        // cache" — a batch whose kernels all fail before fingerprinting
        // would otherwise pass the gate vacuously.
        failures.push("warm pass generated no cache lookups at all".to_string());
    }
    // The timing comparison only means something when pass 1 actually paid
    // for synthesis. With a pre-populated --cache-dir the first pass is
    // already warm (mostly hits), and warm-vs-warm wall time is a coin flip
    // — skip the check rather than fail spuriously.
    if cold.cache.hit_rate() < 0.5 {
        if warm.wall_ms >= cold.wall_ms {
            failures.push(format!(
                "warm pass was not faster than cold ({:.1} ms >= {:.1} ms)",
                warm.wall_ms, cold.wall_ms
            ));
        }
    } else {
        println!(
            "cache-smoke: first pass was already {:.0}% warm (pre-populated cache dir); \
             skipping the cold-vs-warm timing check",
            cold.cache.hit_rate() * 100.0
        );
    }
    if cold.kernels.len() != warm.kernels.len() {
        failures.push(format!(
            "kernel counts differ between passes ({} vs {})",
            cold.kernels.len(),
            warm.kernels.len()
        ));
    } else {
        for (c, w) in cold.kernels.iter().zip(&warm.kernels) {
            if c.report.outcome != w.report.outcome {
                failures.push(format!(
                    "outcome drift on {}: warm hit does not reproduce the cold report",
                    c.kernel_name
                ));
            }
        }
    }

    if failures.is_empty() {
        println!(
            "cache-smoke gate: warm pass 100% hits, {:.2}x faster than cold, outcomes identical",
            cold.wall_ms / warm.wall_ms
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("CACHE-SMOKE FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
