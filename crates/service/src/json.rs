//! A minimal JSON value model, printer, and recursive-descent parser.
//!
//! The build environment has no crates.io access, so the persistent cache
//! tier serializes by hand. The model is deliberately small: objects keep
//! insertion order (stable files, stable diffs), numbers are `f64` (every
//! integer the codec stores fits in the 2⁵³ exact range; the 128-bit
//! fingerprint travels as a hex string), and the printer emits the shortest
//! round-trippable float form (Rust's `{}` for `f64`).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object as an ordered key–value list (no duplicate keys are produced
    /// by the codec; lookup takes the first match).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an unsigned integer (must be integral and in range).
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        (v >= 0.0 && v.fract() == 0.0 && v <= 9.007_199_254_740_992e15).then_some(v as u64)
    }

    /// The value as a signed integer (must be integral and in range).
    pub fn as_i64(&self) -> Option<i64> {
        let v = self.as_f64()?;
        (v.fract() == 0.0 && v.abs() <= 9.007_199_254_740_992e15).then_some(v as i64)
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    write!(out, "{v}").expect("writing to a String cannot fail");
                } else {
                    // JSON has no Inf/NaN; the codec never produces them.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (k, (key, value)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes compactly (no insignificant whitespace). Equivalent to
    /// `format!("{self}")` but avoids formatter overhead on large trees.
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.at));
        }
        Ok(value)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_string())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail")
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.at < self.bytes.len() && self.bytes[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.at,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(text.as_bytes()) {
            self.at += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.at)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {other:?}",
                        self.at
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {other:?}",
                        self.at
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hi = self.unicode_escape()?;
                            // Surrogate pair handling for completeness. The
                            // low half must be validated before combining:
                            // corrupt cache files must parse-error (read as
                            // misses), never panic.
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                if self.bytes[self.at..].starts_with(b"\\u") {
                                    self.at += 1; // onto the 'u'
                                    let lo = self.unicode_escape()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        char::from_u32(
                                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| "invalid \\u escape".to_string())?);
                            continue;
                        }
                        other => return Err(format!("invalid escape {other:?}")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor on the `u`).
    fn unicode_escape(&mut self) -> Result<u32, String> {
        let start = self.at + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.at = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while self
            .peek()
            .map(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            .unwrap_or(false)
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("invalid number {text:?}: {e}"))
    }
}

/// Convenience: builds an object from key–value pairs.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Convenience: a string value.
pub fn s(text: impl Into<String>) -> Json {
    Json::Str(text.into())
}

/// Convenience: a numeric value from anything convertible to f64 exactly.
pub fn n(value: impl Into<f64>) -> Json {
    Json::Num(value.into())
}

/// A usize as a JSON number (counts in this codebase stay well inside the
/// exact-integer range of f64).
pub fn nu(value: usize) -> Json {
    Json::Num(value as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = obj(vec![
            ("a", Json::Arr(vec![n(1.0), n(-2.5), Json::Null])),
            ("b", s("text with \"quotes\" and \\ and \n newline")),
            ("c", obj(vec![("nested", Json::Bool(true))])),
            ("d", n(1e300)),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 0.3333, 6.0, -0.0416, f64::MIN_POSITIVE] {
            let text = Json::Num(x).to_string();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(x), "{x}");
        }
    }

    #[test]
    fn integers_round_trip_through_as_u64() {
        let v = nu(123_456_789_012_345);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(123_456_789_012_345));
        assert_eq!(Json::parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(), s("é😀"));
        // A high surrogate followed by a non-surrogate escape is a parse
        // error, not a panic (corrupt cache files must read as misses).
        assert!(Json::parse("\"\\ud800\\u0041\"").is_err());
        assert!(Json::parse("\"\\ud800x\"").is_err());
    }
}
