//! Determinism under budgets: two governed runs of the same corpus with
//! the same counter-only budgets (no wall clock — deadlines depend on the
//! host) and single-threaded execution must produce byte-identical
//! canonical batch reports, including which kernels degraded where.

use stng_service::batch::{self, BatchOptions};

fn governed_options() -> BatchOptions {
    let mut options = BatchOptions {
        threads: 1,
        // Counter budgets only: prover attempts and bounded-check fuel are
        // consumed deterministically, unlike wall-clock deadlines.
        kernel_prover_attempts: Some(40),
        kernel_fuel: Some(2_000_000),
        ..BatchOptions::default()
    };
    options.config.parallelism = 1;
    options.config.postcond.parallelism = 1;
    options.config.bounded.parallelism = 1;
    options
}

#[test]
fn governed_batches_are_byte_identical_across_runs() {
    let sources: Vec<_> = batch::corpus_sources().into_iter().take(10).collect();
    let options = governed_options();

    let run = || {
        batch::run_batch(&sources, &options)
            .expect("memory-only")
            .to_canonical_json()
            .to_string()
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "same corpus + same counter budgets must reproduce the same report"
    );

    // The test only means something if governance actually bit somewhere
    // and synthesis still succeeded elsewhere.
    assert!(
        first.contains("\"outcome\":\"translated\""),
        "no kernel lifted at all: {first}"
    );
    assert!(
        first.contains("\"degraded\":\"prover-attempts\"")
            || first.contains("\"outcome\":\"timeout\""),
        "budgets never tripped — tighten them so the test is meaningful: {first}"
    );
}
