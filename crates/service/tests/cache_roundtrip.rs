//! End-to-end tests of the two-tier cache against the real pipeline:
//! persisted entries reload to an *equal* `KernelReport`, and alpha-variant
//! kernels are rehydrated into their own vocabulary.

use std::sync::Arc;
use stng::pipeline::{KernelOutcome, Stng};
use stng_service::{CacheStats, PipelineCache};

fn corpus_source(name: &str) -> String {
    stng_corpus::all_kernels()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("corpus kernel {name}"))
        .source
}

/// A fast configuration (mirrors `stng_bench::bench_stng`, which this crate
/// cannot depend on without a cycle).
fn fast_stng() -> Stng {
    let mut stng = Stng::new();
    stng.config.prover.max_attempts = 1500;
    stng.config.prover.max_split_depth = 6;
    stng
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stng-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn persisted_entry_reloads_to_an_equal_report() {
    let dir = temp_dir("persist");
    let source = corpus_source("heat0");

    // Cold: compute and persist.
    let cold_cache = Arc::new(PipelineCache::persistent(64, &dir).expect("cache dir"));
    let stng = fast_stng().with_cache(cold_cache.clone());
    let cold = stng.lift_source(&source).expect("parses");
    assert_eq!(cold.translated(), 1);
    let stats = cold_cache.stats();
    assert_eq!((stats.misses, stats.disk_writes), (1, 1));

    // The on-disk document itself is well-formed and decodes.
    let files: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir listable")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    assert_eq!(files.len(), 1, "one kernel, one entry file");
    // Entries are framed as a checksum line over the JSON body.
    let text = std::fs::read_to_string(&files[0]).expect("entry readable");
    let (sum_line, body) = text.split_once('\n').expect("checksum line present");
    assert_eq!(
        u64::from_str_radix(sum_line, 16).expect("checksum is 16 hex digits"),
        stng_service::canon::fnv1a64(body.as_bytes(), 0xcbf2_9ce4_8422_2325),
        "stored checksum covers the body"
    );
    let doc = stng_service::json::Json::parse(body).expect("entry body is valid JSON");
    let entry = stng_service::codec::decode_entry(&doc).expect("entry decodes");
    assert!(entry.translated);
    assert!(entry.post.is_some());

    // Warm, in a *fresh* process-state stand-in: new cache instance, empty
    // memory tier, same directory. The report must be equal — outcome,
    // metrics, and the original synthesis duration.
    let warm_cache = Arc::new(PipelineCache::persistent(64, &dir).expect("cache dir"));
    let warm_stng = fast_stng().with_cache(warm_cache.clone());
    let warm = warm_stng.lift_source(&source).expect("parses");
    assert!(
        warm.kernels[0].cached,
        "warm report is flagged cache-served"
    );
    assert!(!cold.kernels[0].cached, "cold report is not");
    let mut warm_as_cold = warm.kernels.clone();
    warm_as_cold[0].cached = false;
    assert_eq!(
        warm_as_cold, cold.kernels,
        "warm hit must equal cold report (cached flag aside)"
    );
    let warm_stats = warm_cache.stats();
    assert_eq!(
        (warm_stats.hits, warm_stats.disk_hits, warm_stats.misses),
        (1, 1, 0),
        "the warm lift must be served from disk"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn alpha_variant_hit_is_rehydrated_into_its_own_names() {
    let cache = Arc::new(PipelineCache::in_memory(64));
    let stng = fast_stng().with_cache(cache.clone());

    let original = stng
        .lift_source(&corpus_source("heat0"))
        .expect("heat0 parses");
    assert_eq!(original.translated(), 1);
    assert_eq!(cache.stats().misses, 1);

    let variant = stng
        .lift_source(&corpus_source("heat0_renamed"))
        .expect("heat0_renamed parses");
    assert_eq!(variant.translated(), 1);
    assert_eq!(
        cache.stats(),
        CacheStats {
            hits: 1,
            misses: 1,
            inserts: 1,
            ..Default::default()
        },
        "the renamed duplicate must be a pure cache hit"
    );

    let KernelOutcome::Translated {
        post,
        summary,
        soundly_verified,
        ..
    } = &variant.kernels[0].outcome
    else {
        panic!("variant must be translated from cache");
    };
    assert!(*soundly_verified);
    // The rehydrated postcondition speaks the variant's vocabulary, not the
    // original's.
    let text = post.to_string();
    assert!(text.contains("bnext["), "post uses variant names: {text}");
    assert!(text.contains("bprev["), "post uses variant names: {text}");
    assert!(
        !text.contains("anext["),
        "original names must be gone: {text}"
    );
    // And the rebuilt mini-Halide summary runs off the same names.
    let cpp = summary.halide_cpp();
    assert!(cpp.contains("bprev"), "generated code uses variant names");

    // Metrics ride along from the original lift.
    assert_eq!(
        variant.kernels[0].cegis_iterations_of_outcome(),
        original.kernels[0].cegis_iterations_of_outcome()
    );
    assert_eq!(
        variant.kernels[0].prover_attempts,
        original.kernels[0].prover_attempts
    );
}

/// Small helper: CEGIS iterations of a translated outcome.
trait CegisIters {
    fn cegis_iterations_of_outcome(&self) -> usize;
}

impl CegisIters for stng::pipeline::KernelReport {
    fn cegis_iterations_of_outcome(&self) -> usize {
        match &self.outcome {
            KernelOutcome::Translated {
                cegis_iterations, ..
            } => *cegis_iterations,
            _ => 0,
        }
    }
}

#[test]
fn kernel_symbol_named_like_a_quantifier_still_hits() {
    // The postcondition synthesizer names quantifier variables v0, v1, …
    // A kernel that *declares* a symbol named `v0` used to be permanently
    // un-cacheable: the record-side rename mapped the bound variable into
    // canonical space together with the symbol, and the lookup-side capture
    // guard then rejected every restored entry. The guard now exempts
    // canonical bound-variable names (the restore is a bijection), so this
    // kernel warm-hits like any other.
    let source = r#"
procedure vclash(n, a, b, c0)
  integer :: n
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  real :: c0
  real :: v0
  integer :: i
  do i = 1, n-1
    v0 = b(i-1)
    a(i) = c0 * b(i) + v0
  enddo
end procedure
"#;
    let cache = Arc::new(PipelineCache::in_memory(64));
    let stng = fast_stng().with_cache(cache.clone());
    let cold = stng.lift_source(source).expect("parses");
    assert_eq!(cold.translated(), 1, "temp-carrying kernel lifts");
    let warm = stng.lift_source(source).expect("parses");
    assert!(
        warm.kernels[0].cached,
        "warm report is flagged cache-served"
    );
    let mut warm_as_cold = warm.kernels.clone();
    warm_as_cold[0].cached = false;
    assert_eq!(
        warm_as_cold, cold.kernels,
        "warm hit reproduces cold report"
    );
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1), "second lift must hit");
}

#[test]
fn concurrent_duplicate_lookups_single_flight() {
    // heat0 and heat0_renamed share a fingerprint. Lifted concurrently on
    // two workers, exactly one must pay for synthesis; the other waits for
    // the record and hits — so dedup does not degrade with thread count.
    let cache = Arc::new(PipelineCache::in_memory(64));
    let stng = fast_stng().with_cache(cache.clone());
    let sources = [corpus_source("heat0"), corpus_source("heat0_renamed")];
    let reports =
        stng_intern::parallel::map(&sources, 2, |src| stng.lift_source(src).expect("parses"));
    assert!(reports.iter().all(|r| r.translated() == 1));
    let stats = cache.stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.inserts),
        (1, 1, 1),
        "one worker computes, the duplicate waits and hits"
    );
}

#[test]
fn untranslated_outcomes_are_cached_too() {
    let cache = Arc::new(PipelineCache::in_memory(64));
    let stng = fast_stng().with_cache(cache.clone());
    let source = corpus_source("akl_rev"); // decrementing loop: lowers, fails liftability

    let first = stng.lift_source(&source).expect("parses");
    assert_eq!(first.translated(), 0);
    assert_eq!(first.candidates(), 1);
    let second = stng.lift_source(&source).expect("parses");
    assert!(second.kernels[0].cached, "repeat failure is cache-served");
    let mut second_as_first = second.kernels.clone();
    second_as_first[0].cached = false;
    assert_eq!(second_as_first, first.kernels);
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    match &second.kernels[0].outcome {
        KernelOutcome::Untranslated { reason } => {
            assert!(reason.contains("decrementing"), "cached reason: {reason}")
        }
        other => panic!("expected untranslated, got {other:?}"),
    }
}
