//! The chaos suite: the full corpus is lifted while the deterministic
//! fault-injection registry tears disk writes, fails reads, panics
//! candidate workers, and stalls the prover — and the batch must still
//! complete, classifying every faulted kernel on the degradation ladder
//! (degraded / timeout / crashed) instead of hanging or aborting.
//!
//! Only built with `--features fault-inject`; CI runs it as the
//! `chaos-smoke` job in release mode.

#![cfg(feature = "fault-inject")]

use stng::guard::fault::FaultPlan;
use stng::KernelOutcome;
use stng_service::batch::{self, outcome_tag, BatchOptions};
use stng_service::chaos;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stng-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn faulted_corpus_batch_completes_and_classifies_every_kernel() {
    let dir = temp_dir("corpus");
    let plan = FaultPlan {
        seed: 0xC0FF_EE00,
        torn_write_period: 2,
        read_error_period: 3,
        panic_kernels: vec!["lap0".to_string()],
        stall_kernels: vec!["grad0".to_string()],
        stall_ms: 400,
        ..FaultPlan::default()
    };
    let guard = chaos::armed(plan);

    let sources = batch::corpus_sources();
    assert!(sources.len() >= 30, "full corpus expected");
    let options = BatchOptions {
        cache_dir: Some(dir.clone()),
        kernel_timeout_ms: Some(150),
        retries: 1,
        ..BatchOptions::default()
    };
    let report = batch::run_batch(&sources, &options).expect("cache dir usable");
    let pass = &report.passes[0];

    // Every source produced a row; nothing was dropped or hung.
    assert!(pass.kernels.len() >= sources.len());
    for k in &pass.kernels {
        // Whatever happened, the outcome is a ladder rung, never a panic
        // escaping the driver.
        let tag = outcome_tag(&k.report.outcome);
        assert!(
            [
                "translated",
                "degraded",
                "untranslated",
                "timeout",
                "crashed"
            ]
            .contains(&tag),
            "unclassified outcome for {}",
            k.kernel_name
        );
    }

    // The kernel with injected candidate panics is isolated as crashed.
    let lap0 = pass
        .kernels
        .iter()
        .find(|k| k.source_name == "lap0")
        .expect("lap0 row present");
    assert_eq!(
        outcome_tag(&lap0.report.outcome),
        "crashed",
        "injected panic must surface as a crashed row, got {:?}",
        lap0.report.outcome
    );

    // The stalled kernel ran out of its per-source deadline.
    let grad0 = pass
        .kernels
        .iter()
        .find(|k| k.source_name == "grad0")
        .expect("grad0 row present");
    assert!(
        grad0.report.outcome.is_budget_affected(),
        "stalled prover must trip the per-source budget, got {:?}",
        grad0.report.outcome
    );

    // All four fault classes actually fired.
    let injected = guard.injected();
    assert!(injected.torn_writes > 0, "no torn writes: {injected:?}");
    assert!(injected.read_errors > 0, "no read errors: {injected:?}");
    assert!(
        injected.candidate_panics > 0,
        "no candidate panics: {injected:?}"
    );
    assert!(injected.prover_stalls > 0, "no prover stalls: {injected:?}");
    // Injected read errors were retried, not surfaced.
    assert!(report.cache.stats().io_retries > 0);

    // A second batch over the same directory probes the torn entries: the
    // checksum catches every one, quarantines it, and the batch recomputes.
    let report2 = batch::run_batch(&sources, &options).expect("cache dir usable");
    let stats = report2.cache.stats();
    assert!(
        stats.quarantined > 0,
        "torn writes must be quarantined on re-read: {stats:?}"
    );
    assert!(report2.passes[0].kernels.len() >= sources.len());

    drop(guard);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn adaptive_tier_faults_are_classified_never_wedged() {
    let dir = temp_dir("tiers");
    let plan = FaultPlan {
        seed: 0x71E2,
        // A panic inside the lazy `OnceLock` tier capture: std leaves the
        // cell uninitialized and propagates, so the worker's catch_unwind
        // must isolate the kernel as crashed.
        tier_panic_kernels: vec!["div0".to_string()],
        // A stall inside the initializer: the per-source deadline trips
        // mid-escalation and the kernel lands on a budget-affected rung.
        tier_stall_kernels: vec!["heat0".to_string()],
        stall_ms: 400,
        // Torn state when escalating past the smallest tier: the screen
        // reports a capture error and every candidate is rejected, so no
        // invariant can be proven — the kernel must not come out soundly
        // verified. (The extended bounded-validation fallback may still
        // accept it: that rung runs full concrete executions and never
        // touches the torn capture machinery.)
        torn_tier_kernels: vec!["lap0".to_string()],
        ..FaultPlan::default()
    };
    let guard = chaos::armed(plan);

    let sources = batch::corpus_sources();
    let options = BatchOptions {
        cache_dir: Some(dir.clone()),
        kernel_timeout_ms: Some(150),
        retries: 1,
        ..BatchOptions::default()
    };
    let report = batch::run_batch(&sources, &options).expect("cache dir usable");
    let pass = &report.passes[0];
    assert!(pass.kernels.len() >= sources.len(), "no kernel dropped");

    let row = |name: &str| {
        pass.kernels
            .iter()
            .find(|k| k.source_name == name)
            .unwrap_or_else(|| panic!("{name} row present"))
    };

    assert_eq!(
        outcome_tag(&row("div0").report.outcome),
        "crashed",
        "tier-capture panic must surface as crashed, got {:?}",
        row("div0").report.outcome
    );
    assert!(
        row("heat0").report.outcome.is_budget_affected(),
        "tier-capture stall must trip the per-source budget, got {:?}",
        row("heat0").report.outcome
    );
    let lap0 = &row("lap0").report.outcome;
    match lap0 {
        KernelOutcome::Translated {
            soundly_verified, ..
        } => assert!(
            !soundly_verified,
            "torn tier state rejects every candidate, so a sound proof is \
             impossible — got a soundly-verified translation"
        ),
        KernelOutcome::Untranslated { .. }
        | KernelOutcome::Timeout { .. }
        | KernelOutcome::Crashed { .. } => {}
    }

    let injected = guard.injected();
    assert!(injected.tier_panics > 0, "no tier panics: {injected:?}");
    assert!(injected.tier_stalls > 0, "no tier stalls: {injected:?}");
    assert!(injected.torn_tiers > 0, "no torn tiers: {injected:?}");

    // Disarmed rerun over the same cache directory: every faulted kernel
    // recovers — the poisoned `OnceLock` never wedges the session.
    drop(guard);
    let report2 = batch::run_batch(&sources, &options).expect("cache dir usable");
    let pass2 = &report2.passes[0];
    for name in ["div0", "heat0", "lap0"] {
        let k = pass2
            .kernels
            .iter()
            .find(|k| k.source_name == name)
            .unwrap_or_else(|| panic!("{name} row present"));
        assert!(
            !matches!(outcome_tag(&k.report.outcome), "crashed" | "timeout"),
            "{name} must recover once faults are disarmed, got {:?}",
            k.report.outcome
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantined_entries_keep_their_evidence_on_disk() {
    let dir = temp_dir("evidence");
    let plan = FaultPlan {
        seed: 7,
        torn_write_period: 1, // tear every write
        ..FaultPlan::default()
    };
    let guard = chaos::armed(plan);
    let sources: Vec<_> = batch::corpus_sources()
        .into_iter()
        .filter(|s| s.name == "simple0")
        .collect();
    let options = BatchOptions {
        cache_dir: Some(dir.clone()),
        ..BatchOptions::default()
    };
    batch::run_batch(&sources, &options).expect("cache dir usable");
    assert!(guard.injected().torn_writes > 0);
    drop(guard);

    // Disarmed second run: the torn entry is detected and moved aside.
    let report = batch::run_batch(&sources, &options).expect("cache dir usable");
    assert_eq!(report.cache.stats().quarantined, 1);
    let quarantined: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "quarantined"))
        .collect();
    assert_eq!(quarantined.len(), 1, "evidence file kept: {quarantined:?}");
    // And the healthy rewrite is served on the next probe.
    let report3 = batch::run_batch(&sources, &options).expect("cache dir usable");
    assert_eq!(report3.cache.stats().quarantined, 0);
    assert!(report3.cache.stats().disk_hits > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
