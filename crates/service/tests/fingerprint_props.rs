//! Property tests for the structural fingerprint: invariant under
//! identifier renaming and whitespace, sensitive to stencil-coefficient and
//! iteration-domain changes. Runs over every corpus kernel that lowers, with
//! seeded randomness from the vendored deterministic `rand`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use stng_ir::canon::{canonicalize, rename_kernel};
use stng_ir::ir::{IrExpr, IrStmt, Kernel};
use stng_ir::lower::kernel_from_source;

/// All corpus kernels that lower to IR (the fingerprint is defined over
/// lowered kernels only).
fn lowered_corpus() -> Vec<(String, Kernel)> {
    stng_corpus::all_kernels()
        .into_iter()
        .filter_map(|k| Some((k.name.clone(), k.kernel().ok()?)))
        .collect()
}

/// A random injective rename of every parameter and local to a fresh name.
fn random_rename(kernel: &Kernel, rng: &mut StdRng) -> HashMap<String, String> {
    kernel
        .params
        .iter()
        .chain(&kernel.locals)
        .enumerate()
        .map(|(k, p)| {
            (
                p.name.clone(),
                format!("zz{k}_{:x}", rng.gen_range(0u64..u64::MAX)),
            )
        })
        .collect()
}

#[test]
fn fingerprint_is_invariant_under_random_renaming() {
    let mut rng = StdRng::seed_from_u64(0x5717_06ab);
    for (name, kernel) in lowered_corpus() {
        let base = canonicalize(&kernel);
        for trial in 0..3 {
            let map = random_rename(&kernel, &mut rng);
            let variant = canonicalize(&rename_kernel(&kernel, &map));
            assert_eq!(
                base.fingerprint, variant.fingerprint,
                "kernel {name}, rename trial {trial}: fingerprints must collide"
            );
            assert_eq!(base.text, variant.text, "kernel {name}: canonical texts");
        }
    }
}

/// Whitespace-perturbs a source without changing its token stream: doubles
/// existing inter-token spaces, appends trailing spaces, inserts blank
/// lines.
fn perturb_whitespace(source: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for line in source.lines() {
        if rng.gen_bool(0.3) {
            out.push('\n');
        }
        for c in line.chars() {
            out.push(c);
            if c == ' ' && rng.gen_bool(0.5) {
                out.push_str("  ");
            }
        }
        if rng.gen_bool(0.5) {
            out.push_str("   ");
        }
        out.push('\n');
    }
    out
}

#[test]
fn fingerprint_is_invariant_under_whitespace() {
    let mut rng = StdRng::seed_from_u64(0xd15e_a5e5);
    for corpus_kernel in stng_corpus::all_kernels() {
        let Ok(kernel) = corpus_kernel.kernel() else {
            continue;
        };
        let base = canonicalize(&kernel);
        let noisy = perturb_whitespace(&corpus_kernel.source, &mut rng);
        let reparsed = kernel_from_source(&noisy, 0).unwrap_or_else(|e| {
            panic!(
                "kernel {}: whitespace perturbation must still parse: {e}",
                corpus_kernel.name
            )
        });
        assert_eq!(
            base.fingerprint,
            canonicalize(&reparsed).fingerprint,
            "kernel {}: whitespace must not change the fingerprint",
            corpus_kernel.name
        );
    }
}

/// Mutates the first real constant found in the kernel body (a stencil
/// coefficient) by adding 1. Returns `true` when a constant was found.
fn bump_first_real(stmts: &mut [IrStmt]) -> bool {
    fn in_expr(e: &mut IrExpr) -> bool {
        match e {
            IrExpr::Real(v) => {
                *v += 1.0;
                true
            }
            IrExpr::Int(_) | IrExpr::Var(_) => false,
            IrExpr::Load { indices, .. } => indices.iter_mut().any(in_expr),
            IrExpr::Bin { lhs, rhs, .. } | IrExpr::Cmp { lhs, rhs, .. } => {
                in_expr(lhs) || in_expr(rhs)
            }
            IrExpr::Call { args, .. } => args.iter_mut().any(in_expr),
            IrExpr::And(a, b) | IrExpr::Or(a, b) => in_expr(a) || in_expr(b),
            IrExpr::Not(e) => in_expr(e),
        }
    }
    stmts.iter_mut().any(|stmt| match stmt {
        IrStmt::AssignScalar { value, .. } => in_expr(value),
        IrStmt::Store { indices, value, .. } => indices.iter_mut().any(in_expr) || in_expr(value),
        IrStmt::Loop { body, .. } => bump_first_real(body),
        IrStmt::If {
            cond,
            then_body,
            else_body,
        } => in_expr(cond) || bump_first_real(then_body) || bump_first_real(else_body),
    })
}

/// Doubles the step of the first loop found (a domain change).
fn restride_first_loop(stmts: &mut [IrStmt]) -> bool {
    stmts.iter_mut().any(|stmt| match stmt {
        IrStmt::Loop { domain, .. } => {
            domain.step *= 2;
            true
        }
        IrStmt::If {
            then_body,
            else_body,
            ..
        } => restride_first_loop(then_body) || restride_first_loop(else_body),
        _ => false,
    })
}

#[test]
fn fingerprint_is_sensitive_to_coefficient_and_domain_changes() {
    let mut coeff_cases = 0;
    for (name, kernel) in lowered_corpus() {
        let base = canonicalize(&kernel);

        let mut perturbed = kernel.clone();
        if bump_first_real(&mut perturbed.body) {
            coeff_cases += 1;
            assert_ne!(
                base.fingerprint,
                canonicalize(&perturbed).fingerprint,
                "kernel {name}: changing a stencil coefficient must change the fingerprint"
            );
        }

        let mut restrided = kernel.clone();
        assert!(
            restride_first_loop(&mut restrided.body),
            "kernel {name}: corpus kernels all contain loops"
        );
        assert_ne!(
            base.fingerprint,
            canonicalize(&restrided).fingerprint,
            "kernel {name}: changing an iteration-domain step must change the fingerprint"
        );
    }
    assert!(
        coeff_cases > 10,
        "the corpus should exercise the coefficient case broadly, got {coeff_cases}"
    );
}

/// KNOWN WEAKNESS (pinned, ROADMAP carried item): the canonicalizer renames
/// parameters by **declaration position** (`p0`, `p1`, …), so two kernels
/// that perform the identical computation but declare their parameters in a
/// different order canonicalize to different texts and *miss* the lifting
/// cache. Real legacy suites hit this: mechanical extraction tools order
/// parameters by first use, hand-written variants by convention.
///
/// This test pins the current (weak) behavior so the planned kind-stratified
/// canonicalization — rename within each parameter kind by first *body*
/// occurrence instead of by signature position — has a red→green target:
/// when that lands, flip both `assert_ne!` below to `assert_eq!` and move
/// the pair into `expected_collisions` above.
#[test]
fn parameter_order_permutations_currently_miss_the_cache() {
    const ORIGINAL: &str = r#"
procedure pperm_a(n, src, dst)
  integer :: n
  real, dimension(0:n) :: src
  real, dimension(0:n) :: dst
  integer :: i
  do i = 1, n-1
    dst(i) = src(i-1) + src(i+1)
  enddo
end procedure
"#;
    // The same computation with the two array parameters declared in the
    // opposite order — a pure signature permutation.
    const PERMUTED: &str = r#"
procedure pperm_b(n, dst, src)
  integer :: n
  real, dimension(0:n) :: dst
  real, dimension(0:n) :: src
  integer :: i
  do i = 1, n-1
    dst(i) = src(i-1) + src(i+1)
  enddo
end procedure
"#;
    let original = kernel_from_source(ORIGINAL, 0).expect("original lowers");
    let permuted = kernel_from_source(PERMUTED, 0).expect("permuted lowers");
    let canon_a = canonicalize(&original);
    let canon_b = canonicalize(&permuted);
    assert_ne!(
        canon_a.fingerprint, canon_b.fingerprint,
        "positional canonicalization separates parameter-order permutations \
         today; if this started colliding, kind-stratified canonicalization \
         has landed — promote this pair to expected_collisions instead"
    );
    assert_ne!(canon_a.text, canon_b.text);
}

#[test]
fn distinct_corpus_kernels_do_not_collide() {
    let kernels = lowered_corpus();
    let mut seen: HashMap<u128, (String, String)> = HashMap::new();
    let expected_collisions = [
        ("heat0".to_string(), "heat0_renamed".to_string()),
        ("jac2s2".to_string(), "jac2s2_ws".to_string()),
    ];
    for (name, kernel) in &kernels {
        let canon = canonicalize(kernel);
        if let Some((prior, text)) = seen.get(&canon.fingerprint) {
            let pair = (prior.clone(), name.clone());
            assert!(
                expected_collisions.contains(&pair),
                "unexpected fingerprint collision between {prior} and {name}"
            );
            assert_eq!(text, &canon.text, "colliding kernels must share text");
        } else {
            seen.insert(canon.fingerprint, (name.clone(), canon.text));
        }
    }
}
