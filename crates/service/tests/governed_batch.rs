//! Tier-1 tests of the governed batch driver: budgets cut work short
//! without losing rows, and the degradation ladder shows up in the report.

use stng_service::batch::{self, outcome_tag, BatchOptions};

fn corpus_subset(names: &[&str]) -> Vec<stng_service::BatchSource> {
    let sources: Vec<_> = batch::corpus_sources()
        .into_iter()
        .filter(|s| names.contains(&s.name.as_str()))
        .collect();
    assert_eq!(sources.len(), names.len(), "all requested kernels found");
    sources
}

#[test]
fn dead_batch_deadline_yields_timeout_rows_not_a_hang() {
    let sources = corpus_subset(&["simple0", "heat0", "grad0"]);
    let options = BatchOptions {
        deadline_ms: Some(0), // expired before the first kernel starts
        threads: 1,
        ..BatchOptions::default()
    };
    let report = batch::run_batch(&sources, &options).expect("memory-only");
    let pass = &report.passes[0];
    assert_eq!(pass.kernels.len(), sources.len());
    for k in &pass.kernels {
        // Nothing can have synthesized a summary under a dead deadline;
        // liftability failures (pre-synthesis) may still report as
        // untranslated.
        let tag = outcome_tag(&k.report.outcome);
        assert!(
            tag == "timeout" || tag == "untranslated",
            "{}: expected timeout under a dead deadline, got {tag}",
            k.kernel_name
        );
    }
    let (translated, degraded, _, timeout, _) = pass.summary();
    assert_eq!((translated, degraded), (0, 0));
    assert!(timeout > 0);
}

#[test]
fn ungoverned_batch_reports_no_degradation() {
    let sources = corpus_subset(&["simple0", "heat0"]);
    let report = batch::run_batch(&sources, &BatchOptions::default()).expect("memory-only");
    let (translated, degraded, untranslated, timeout, crashed) = report.passes[0].summary();
    assert_eq!(translated, 2, "both kernels lift without budgets");
    assert_eq!((degraded, untranslated, timeout, crashed), (0, 0, 0, 0));
    for k in &report.passes[0].kernels {
        assert!(!k.report.outcome.is_budget_affected());
    }
}

#[test]
fn starved_prover_budget_degrades_and_retries_escalate_past_it() {
    let sources = corpus_subset(&["heat0"]);
    // One prover attempt is never enough for a sound proof: the kernel
    // degrades to bounded-only validation.
    let starved = BatchOptions {
        kernel_prover_attempts: Some(1),
        threads: 1,
        ..BatchOptions::default()
    };
    let report = batch::run_batch(&sources, &starved).expect("memory-only");
    let row = &report.passes[0].kernels[0];
    assert!(
        row.report.outcome.is_budget_affected(),
        "one prover attempt cannot prove heat0: {:?}",
        row.report.outcome
    );

    // Enough retries double the budget past what the proof needs, and the
    // same kernel comes back soundly verified.
    let escalating = BatchOptions {
        retries: 14, // 1 << 14 attempts by the last try
        ..starved
    };
    let report = batch::run_batch(&sources, &escalating).expect("memory-only");
    let row = &report.passes[0].kernels[0];
    assert_eq!(
        outcome_tag(&row.report.outcome),
        "translated",
        "escalated budget must recover a sound lift: {:?}",
        row.report.outcome
    );
}

#[test]
fn batch_json_carries_outcome_and_summary_fields() {
    let sources = corpus_subset(&["simple0"]);
    let report = batch::run_batch(&sources, &BatchOptions::default()).expect("memory-only");
    let text = report.to_json().to_string();
    assert!(text.contains("\"schema\":2"), "schema bumped: {text}");
    assert!(text.contains("\"outcome\":\"translated\""));
    assert!(text.contains("\"summary\""));
    assert!(text.contains("\"degraded\""));
    assert!(text.contains("\"quarantined\""));
}
