//! Quickstart: lift the paper's running example (Fig. 1) end to end and
//! print the lifted summary, the proof status, and the generated Halide C++.
//!
//! Run with `cargo run --example quickstart`.

use stng::pipeline::{KernelOutcome, Stng};
use stng_pred::fixtures;

fn main() {
    let source = fixtures::RUNNING_EXAMPLE;
    println!("--- original Fortran kernel ---\n{source}");

    let report = Stng::new()
        .lift_source(source)
        .expect("the running example parses");
    for kernel in &report.kernels {
        println!("kernel {}:", kernel.name);
        match &kernel.outcome {
            KernelOutcome::Translated {
                post,
                summary,
                soundly_verified,
                cegis_iterations,
                ..
            } => {
                println!("  lifted summary (postcondition):\n    {post}");
                println!(
                    "  proof: {} after {} CEGIS iteration(s), {} control bits, {} AST nodes, {:.2?} synthesis time",
                    if *soundly_verified {
                        "fully verified"
                    } else {
                        "bounded-validated"
                    },
                    cegis_iterations,
                    kernel.control_bits.total(),
                    kernel.postcond_nodes,
                    kernel.synthesis_time
                );
                println!(
                    "--- generated Halide C++ generator ---\n{}",
                    summary.halide_cpp()
                );
            }
            KernelOutcome::Untranslated { reason } => {
                println!("  not translated: {reason}");
            }
            other => {
                println!("  cut short by resource governance: {other:?}");
            }
        }
    }
}
