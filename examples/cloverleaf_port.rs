//! Port a mini-app to the DSL: lift every CloverLeaf-style kernel of the
//! corpus, report which ones translate, and measure the speedup of the
//! lifted-and-scheduled version of one of them against the original
//! interpreted loop nest — the §6.2/§6.3 workflow in miniature.
//!
//! Run with `cargo run --release --example cloverleaf_port`.

use stng::pipeline::KernelOutcome;
use stng_bench_helpers::*;

/// Minimal local copies of the measurement helpers so the example is
/// self-contained (the benchmark crate has richer versions).
mod stng_bench_helpers {
    pub use stng_corpus::{suite_kernels, Suite};
}

fn main() {
    let stng = stng::Stng::new();
    let kernels = suite_kernels(Suite::CloverLeaf);
    println!("CloverLeaf-style kernels: {}", kernels.len());

    let mut translated = 0usize;
    for corpus_kernel in &kernels {
        let report = stng
            .lift_source(&corpus_kernel.source)
            .expect("corpus kernels parse");
        for kernel in &report.kernels {
            match &kernel.outcome {
                KernelOutcome::Translated {
                    soundly_verified, ..
                } => {
                    translated += 1;
                    println!(
                        "  {:<10} translated ({}, {} control bits, {} AST nodes)",
                        corpus_kernel.name,
                        if *soundly_verified {
                            "verified"
                        } else {
                            "bounded"
                        },
                        kernel.control_bits.total(),
                        kernel.postcond_nodes
                    );
                }
                KernelOutcome::Untranslated { reason } => {
                    println!("  {:<10} NOT translated: {reason}", corpus_kernel.name);
                }
                other => {
                    println!(
                        "  {:<10} cut short by resource governance: {other:?}",
                        corpus_kernel.name
                    );
                }
            }
        }
    }
    println!("translated {translated} of {} kernels", kernels.len());
}
