//! Portability: lift the StencilMark `heat0` kernel, then compare CPU
//! execution of the lifted summary against the modelled GPU execution with
//! and without host↔device transfers (the §6.4 study for one kernel).
//!
//! Run with `cargo run --release --example gpu_offload`.

use std::collections::HashMap;
use stng::pipeline::{KernelOutcome, Stng};
use stng_corpus::{suite_kernels, Suite};
use stng_halide::buffer::Buffer;
use stng_halide::gpu::GpuModel;
use stng_halide::schedule::{realize, Schedule};
use stng_sym::choose_small_bounds;

fn main() {
    let kernels = suite_kernels(Suite::StencilMark);
    let heat0 = kernels
        .iter()
        .find(|k| k.name == "heat0")
        .expect("heat0 exists");
    let report = Stng::new()
        .lift_source(&heat0.source)
        .expect("heat0 parses");
    let kernel_report = &report.kernels[0];
    let KernelOutcome::Translated { summary, .. } = &kernel_report.outcome else {
        panic!("heat0 should lift: {:?}", kernel_report.outcome);
    };
    let kernel = kernel_report.kernel.as_ref().expect("kernel lowered");

    // Build inputs at a 48³ grid.
    let int_params: HashMap<String, i64> = choose_small_bounds(kernel, 48);
    let (func, _) = &summary.funcs[0];
    let region = summary.region(0, &int_params).expect("region evaluates");
    let extent: Vec<usize> = region
        .iter()
        .map(|(lo, hi)| (hi - lo + 3) as usize)
        .collect();
    let origin: Vec<i64> = region.iter().map(|(lo, _)| lo - 1).collect();
    let input = Buffer::from_fn(origin, extent, |ix| {
        (ix.iter().sum::<i64>() as f64 * 0.37).sin() + 1.0
    });
    let mut inputs = HashMap::new();
    for image in func.expr.images() {
        inputs.insert(image, &input);
    }
    let params = HashMap::new();

    let start = std::time::Instant::now();
    let out = realize(
        func,
        &Schedule::default_tuned(3, 4),
        &region,
        &inputs,
        &params,
    );
    let cpu = start.elapsed();

    let gpu = GpuModel::default().run(func, out.len(), &inputs);
    println!("heat0 over {} output points:", out.len());
    println!("  CPU (tuned mini-Halide):        {cpu:?}");
    println!("  GPU model, kernel only:         {:?}", gpu.kernel_time);
    println!("  GPU model, including transfers: {:?}", gpu.total());
    println!(
        "  speedup vs CPU: {:.2}x (no transfer {:.2}x)",
        cpu.as_secs_f64() / gpu.total().as_secs_f64(),
        cpu.as_secs_f64() / gpu.kernel_time.as_secs_f64()
    );
}
