//! De-optimization (§6.5): lift a hand-tiled 27-point challenge kernel and
//! print the clean serial C regenerated from its summary, together with what
//! the modelled auto-parallelizing compiler makes of the original versus the
//! regenerated code.
//!
//! Run with `cargo run --release --example deoptimize`.

use std::collections::HashMap;
use stng::pipeline::{KernelOutcome, Stng};
use stng_corpus::{suite_kernels, Suite};
use stng_halide::codegen::serial_c;
use stng_ir::autopar::AutoParModel;
use stng_sym::choose_small_bounds;

fn main() {
    let kernels = suite_kernels(Suite::Challenge);
    let tiled = kernels
        .iter()
        .find(|k| k.name == "heat27t")
        .expect("heat27t exists");
    let report = Stng::new()
        .lift_source(&tiled.source)
        .expect("heat27t parses");
    let kernel_report = &report.kernels[0];
    let kernel = kernel_report.kernel.as_ref().expect("kernel lowered");

    let model = AutoParModel::default();
    let before = model.analyze(kernel);
    println!("original hand-tiled kernel: {:?}", before.verdict);
    println!(
        "  modelled auto-parallelizer speedup: {:.4}x",
        before.speedup
    );

    match &kernel_report.outcome {
        KernelOutcome::Translated { summary, post, .. } => {
            println!("\nlifted summary:\n  {post}\n");
            let int_params: HashMap<String, i64> = choose_small_bounds(kernel, 16);
            let region = summary.region(0, &int_params).unwrap_or_default();
            println!(
                "regenerated (de-optimized) serial C:\n{}",
                serial_c(&summary.funcs[0].0, &region)
            );
            let after = model.cores as f64 * model.efficiency
                / (1.0 + model.overhead_fraction * model.cores as f64 * model.efficiency);
            println!("modelled auto-parallelizer speedup on the regenerated code: {after:.2}x");
        }
        KernelOutcome::Untranslated { reason } => {
            println!("kernel did not lift: {reason}");
        }
        other => {
            println!("kernel lift cut short by resource governance: {other:?}");
        }
    }
}
