//! Workspace-level facade for the STNG reproduction.
//!
//! This crate re-exports the member crates so integration tests and examples
//! can reach every layer through a single dependency.

pub use stng;
pub use stng_corpus as corpus;
pub use stng_halide as halide;
pub use stng_ir as ir;
pub use stng_pred as pred;
pub use stng_solve as solve;
pub use stng_sym as sym;
pub use stng_synth as synth;
