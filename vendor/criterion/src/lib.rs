//! A minimal, dependency-free stand-in for the `criterion` benchmarking
//! harness, providing the API subset this workspace's benches use.
//!
//! The build environment has no network access to crates.io, so the real
//! criterion cannot be fetched. This crate keeps the bench sources unchanged
//! (`criterion_group!`/`criterion_main!`, `benchmark_group`, `bench_function`,
//! `Bencher::iter`) while measuring with plain [`std::time::Instant`]: each
//! benchmark runs one warm-up iteration plus `sample_size` timed samples and
//! reports min / median / mean wall time.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Runs a standalone benchmark (criterion's `Criterion::bench_function`).
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.default_sample_size;
        run_bench(&id.into(), sample_size, f);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures one benchmark function.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.sample_size, f);
    }

    /// Ends the group (printing nothing extra; per-bench lines suffice).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; `iter` runs and times the
/// workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` runs of `routine` (after one warm-up run).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id}: no samples recorded");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "  {id}: min {:.3?}  median {:.3?}  mean {:.3?}  ({} samples)",
        min,
        median,
        mean,
        sorted.len()
    );
}

/// Collects benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups, mirroring criterion's macro of
/// the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
