//! A minimal, dependency-free stand-in for the `rand` crate, providing the
//! API subset this workspace uses (`StdRng::seed_from_u64`, `gen_range` on
//! integer ranges, `gen_bool`).
//!
//! The build environment has no network access to crates.io. Randomness here
//! backs *reproducible* randomized testing only (seeded counterexample search
//! and autotuning), so a fast deterministic SplitMix64 generator is exactly
//! what is needed — statistical quality far beyond these use cases, zero
//! dependencies, stable across platforms.

use std::ops::Range;

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Integer types samplable from a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `range`.
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                let span = (range.end as i128 - range.start as i128).max(1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform!(i64, u64, i32, u32, usize, isize);

pub mod rngs {
    //! Generator implementations (subset of `rand::rngs`).

    /// Deterministic generator backed by SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-3i64..7);
            assert!((-3..7).contains(&v));
            let u: usize = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
