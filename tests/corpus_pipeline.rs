//! Integration tests over the benchmark corpus: the Table 2 classification
//! behaves as designed and representative kernels from every suite lift.

use stng::pipeline::Stng;
use stng_corpus::{all_kernels, suite_kernels, Suite};

fn fast_stng() -> Stng {
    let mut stng = Stng::new();
    stng.config.prover.max_attempts = 1500;
    stng
}

#[test]
fn stencilmark_suite_lifts_completely() {
    let stng = fast_stng();
    for kernel in suite_kernels(Suite::StencilMark) {
        let report = stng.lift_source(&kernel.source).unwrap();
        assert_eq!(
            report.translated(),
            report.candidates(),
            "kernel {} should lift ({:?})",
            kernel.name,
            report.kernels[0].outcome
        );
    }
}

#[test]
fn negative_cases_are_classified_as_designed() {
    let stng = fast_stng();
    let kernels = all_kernels();

    // The decrementing-loop kernel is a candidate that fails translation.
    let rev = kernels.iter().find(|k| k.name == "akl_rev").unwrap();
    let report = stng.lift_source(&rev.source).unwrap();
    assert_eq!(report.candidates(), 1);
    assert_eq!(report.translated(), 0);

    // The boundary-condition kernel also fails (conditionals).
    let bc = kernels.iter().find(|k| k.name == "akl_bc").unwrap();
    let report = stng.lift_source(&bc.source).unwrap();
    assert_eq!(report.candidates(), 1);
    assert_eq!(report.translated(), 0);

    // The indirect-access kernel is not even flagged as a candidate.
    let gather = kernels.iter().find(|k| k.name == "gather0").unwrap();
    let report = stng.lift_source(&gather.source).unwrap();
    assert_eq!(report.candidates(), 0);
    assert_eq!(report.skipped_loops, 1);

    // The reduction is a candidate but not a stencil.
    let norm = kernels.iter().find(|k| k.name == "mg_norm").unwrap();
    let report = stng.lift_source(&norm.source).unwrap();
    assert_eq!(report.candidates(), 1);
    assert_eq!(report.translated(), 0);
}

#[test]
fn cloverleaf_representatives_lift() {
    let stng = fast_stng();
    for name in ["akl83", "akl81", "gckl77"] {
        let kernel = all_kernels().into_iter().find(|k| k.name == name).unwrap();
        let report = stng.lift_source(&kernel.source).unwrap();
        assert_eq!(report.translated(), 1, "kernel {name} should lift");
    }
}

#[test]
fn challenge_kernels_produce_summaries() {
    let stng = fast_stng();
    for name in ["heat27", "heat27u"] {
        let kernel = all_kernels().into_iter().find(|k| k.name == name).unwrap();
        let report = stng.lift_source(&kernel.source).unwrap();
        assert_eq!(report.translated(), 1, "kernel {name} should lift");
        assert!(report.kernels[0].postcond_nodes > 50);
    }
}
