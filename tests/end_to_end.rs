//! Workspace-level integration tests: lift kernels from source and check that
//! the generated mini-Halide code computes exactly what the original Fortran
//! loop nest computes.

use std::collections::HashMap;
use stng::pipeline::{KernelOutcome, Stng};
use stng_halide::buffer::Buffer;
use stng_halide::schedule::{realize, Schedule};
use stng_ir::interp::{run_kernel, State};
use stng_ir::ir::{Kernel, ParamKind};
use stng_pred::fixtures;
use stng_sym::choose_small_bounds;

/// Runs the original kernel and the lifted summary on the same inputs and
/// asserts the outputs agree on the written region.
fn assert_lifted_matches_original(source: &str, grid: i64) {
    let report = Stng::new().lift_source(source).expect("source parses");
    assert!(report.translated() >= 1, "kernel should lift");
    let kernel_report = &report.kernels[0];
    let kernel = kernel_report.kernel.as_ref().expect("kernel lowered");
    let KernelOutcome::Translated { summary, .. } = &kernel_report.outcome else {
        panic!("expected a translation: {:?}", kernel_report.outcome)
    };

    // Original execution.
    let mut state = build_state(kernel, grid);
    run_kernel(kernel, &mut state).expect("original executes");

    // Lifted execution, one function per output array.
    let int_params: HashMap<String, i64> = state.ints.clone();
    let params: HashMap<String, f64> = state.reals.clone();
    for (k, (func, clause)) in summary.funcs.iter().enumerate() {
        let region = summary.region(k, &int_params).expect("region evaluates");
        let mut buffers: HashMap<String, Buffer> = HashMap::new();
        for image in func.expr.images() {
            // Inputs are the *pre-state* arrays: rebuild them.
            let pre = build_state(kernel, grid);
            let arr = pre.array(&image).expect("input array exists");
            buffers.insert(
                image.clone(),
                Buffer {
                    origin: arr.dims.iter().map(|d| d.0).collect(),
                    extent: arr.dims.iter().map(|d| (d.1 - d.0 + 1) as usize).collect(),
                    step: vec![1; arr.dims.len()],
                    data: arr.data.clone(),
                },
            );
        }
        let inputs: HashMap<String, &Buffer> =
            buffers.iter().map(|(n, b)| (n.clone(), b)).collect();
        let lifted = realize(func, &Schedule::naive(func.rank), &region, &inputs, &params);

        let original = state.array(&clause.eq.array).expect("output array exists");
        for (idx, value) in lifted
            .data
            .iter()
            .enumerate()
            .map(|(flat, v)| (unflatten(flat, &lifted), *v))
        {
            let expected = original.get(&idx).copied().expect("index in bounds");
            assert!(
                (expected - value).abs() <= 1e-9 * expected.abs().max(1.0),
                "mismatch at {idx:?}: original {expected} vs lifted {value}"
            );
        }
    }
}

fn unflatten(mut flat: usize, buf: &Buffer) -> Vec<i64> {
    let mut idx = vec![0i64; buf.rank()];
    for d in (0..buf.rank()).rev() {
        idx[d] = buf.origin[d] + buf.step[d] * (flat % buf.extent[d]) as i64;
        flat /= buf.extent[d];
    }
    idx
}

fn build_state(kernel: &Kernel, grid: i64) -> State<f64> {
    let bounds = choose_small_bounds(kernel, grid);
    let mut state: State<f64> = State::new();
    for (name, value) in &bounds {
        state.set_int(name.clone(), *value);
    }
    for (k, name) in kernel.real_params().into_iter().enumerate() {
        state.set_real(name, 0.75 + 0.5 * k as f64);
    }
    for param in &kernel.params {
        if let ParamKind::Array { dims } = &param.kind {
            let mut concrete = Vec::new();
            for (lo, hi) in dims {
                let lo = stng_ir::interp::eval_int_expr(lo, &state).unwrap();
                let hi = stng_ir::interp::eval_int_expr(hi, &state).unwrap();
                concrete.push((lo, hi));
            }
            let array = stng_ir::interp::ArrayData::from_fn(concrete, |idx| {
                (idx.iter()
                    .enumerate()
                    .map(|(d, v)| (d as i64 + 1) * v)
                    .sum::<i64>() as f64
                    * 0.31)
                    .cos()
                    + 1.5
            });
            state.set_array(param.name.clone(), array);
        }
    }
    state
}

#[test]
fn running_example_lifted_code_matches_original() {
    assert_lifted_matches_original(fixtures::RUNNING_EXAMPLE, 12);
}

#[test]
fn weighted_1d_stencil_lifted_code_matches_original() {
    let src = r#"
procedure smooth(n, a, b, w)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  real :: w
  integer :: i
  do i = 1, n-1
    a(i) = 0.25 * b(i-1) + 0.5 * b(i) + 0.25 * b(i+1) + w
  enddo
end procedure
"#;
    assert_lifted_matches_original(src, 64);
}

#[test]
fn three_d_seven_point_lifted_code_matches_original() {
    let src = r#"
procedure heat(n, a, b)
  real, dimension(0:n, 0:n, 0:n) :: a
  real, dimension(0:n, 0:n, 0:n) :: b
  integer :: i
  integer :: j
  integer :: k
  do k = 1, n-1
    do j = 1, n-1
      do i = 1, n-1
        a(i, j, k) = 0.166 * (b(i-1, j, k) + b(i+1, j, k) + b(i, j-1, k) + b(i, j+1, k) + b(i, j, k-1) + b(i, j, k+1))
      enddo
    enddo
  enddo
end procedure
"#;
    assert_lifted_matches_original(src, 10);
}

#[test]
fn strided_kernel_lifted_code_matches_original() {
    // A step-2 loop (§6.5): the generated Func must realize exactly the
    // strided points and agree with the interpreter on every one of them.
    let src = r#"
procedure halfsweep(n, a, b)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  integer :: i
  do i = 1, n-1, 2
    a(i) = 0.5 * (b(i-1) + b(i+1))
  enddo
end procedure
"#;
    let report = Stng::new().lift_source(src).expect("parses");
    assert_eq!(report.translated(), 1);
    let KernelOutcome::Translated {
        summary,
        soundly_verified,
        ..
    } = &report.kernels[0].outcome
    else {
        panic!("expected translation")
    };
    assert!(
        *soundly_verified,
        "strided kernel should carry a full proof"
    );
    assert_eq!(summary.funcs[0].0.steps, vec![2]);
    assert_lifted_matches_original(src, 33);
}

#[test]
fn strided_2d_kernel_lifted_code_matches_original() {
    let src = r#"
procedure rb(n, m, a, b)
  real, dimension(0:n, 0:m) :: a
  real, dimension(0:n, 0:m) :: b
  integer :: i
  integer :: j
  do j = 1, m-1, 2
    do i = 1, n-1
      a(i, j) = 0.25 * (b(i-1, j) + b(i+1, j) + b(i, j-1) + b(i, j+1))
    enddo
  enddo
end procedure
"#;
    assert_lifted_matches_original(src, 14);
}

#[test]
fn heat27t_tiled_kernel_lifts_end_to_end() {
    // The §6.5 de-optimization case study: the hand-tiled 27-point kernel
    // (strided tile loops over `min()`-clipped point loops) must lift
    // end-to-end, and the generated Func must reproduce the reference
    // interpreter on randomized inputs at several grid sizes.
    let heat27t = stng_corpus::suite_kernels(stng_corpus::Suite::Challenge)
        .into_iter()
        .find(|k| k.name == "heat27t")
        .expect("heat27t is in the corpus");
    let report = Stng::new()
        .lift_source(&heat27t.source)
        .expect("heat27t parses");
    assert_eq!(report.translated(), 1, "heat27t must lift");
    let KernelOutcome::Translated { post, .. } = &report.kernels[0].outcome else {
        panic!("expected translation")
    };
    // The summary is the clean (untiled) dense description of the stencil.
    let text = post.to_string();
    assert!(text.contains("anext[v0, v1, v2]"), "summary: {text}");
    assert!(!text.contains("step"), "summary should be dense: {text}");
    for grid in [8, 11] {
        assert_lifted_matches_original(&heat27t.source, grid);
    }
}

#[test]
fn strided_corpus_kernels_lift_soundly() {
    for name in ["heat1s2", "jac2s2"] {
        let kernel = stng_corpus::suite_kernels(stng_corpus::Suite::Challenge)
            .into_iter()
            .find(|k| k.name == name)
            .expect("strided kernel is in the corpus");
        let report = Stng::new().lift_source(&kernel.source).expect("parses");
        assert_eq!(report.translated(), 1, "{name} must lift");
        let KernelOutcome::Translated {
            soundly_verified, ..
        } = &report.kernels[0].outcome
        else {
            panic!("expected translation for {name}")
        };
        assert!(*soundly_verified, "{name} should carry a full proof");
        assert_lifted_matches_original(&kernel.source, kernel.grid);
    }
}

#[test]
fn multi_output_kernel_lifts_each_output_separately() {
    let src = r#"
procedure grad(n, gx, gy, p)
  real, dimension(0:n, 0:n) :: gx
  real, dimension(0:n, 0:n) :: gy
  real, dimension(0:n, 0:n) :: p
  integer :: i
  integer :: j
  do j = 1, n-1
    do i = 1, n-1
      gx(i, j) = 0.5 * (p(i+1, j) - p(i-1, j))
      gy(i, j) = 0.5 * (p(i, j+1) - p(i, j-1))
    enddo
  enddo
end procedure
"#;
    let report = Stng::new().lift_source(src).unwrap();
    assert_eq!(report.translated(), 1);
    let KernelOutcome::Translated { summary, post, .. } = &report.kernels[0].outcome else {
        panic!("expected translation")
    };
    assert_eq!(post.clauses.len(), 2);
    assert_eq!(summary.funcs.len(), 2);
    assert_lifted_matches_original(src, 16);
}
