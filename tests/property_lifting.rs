//! Property-based tests: for randomly generated pointwise stencils, the
//! lifted summary must agree with the original program, and the predicate
//! evaluation/verification machinery must respect its invariants.

use proptest::prelude::*;
use stng::pipeline::{KernelOutcome, Stng};
use stng_ir::interp::{run_kernel, ArrayData, State};
use stng_ir::value::{DataValue, ModInt, MOD_FIELD};
use stng_pred::eval::eval_pred;

/// Generates a random 1D stencil kernel: a weighted sum of reads of `b` at
/// small offsets.
fn stencil_source(offsets: &[i64], weights: &[f64]) -> String {
    let terms: Vec<String> = offsets
        .iter()
        .zip(weights)
        .map(|(off, w)| {
            let ix = match off.cmp(&0) {
                std::cmp::Ordering::Equal => "i".to_string(),
                std::cmp::Ordering::Greater => format!("i+{off}"),
                std::cmp::Ordering::Less => format!("i{off}"),
            };
            format!("{w:.2} * b({ix})")
        })
        .collect();
    format!(
        r#"
procedure randsten(n, a, b)
  real, dimension(-3:n) :: a
  real, dimension(-3:n) :: b
  integer :: i
  do i = 1, n-3
    a(i) = {}
  enddo
end procedure
"#,
        terms.join(" + ")
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Every randomly generated pointwise stencil lifts, and its postcondition
    /// holds on a concrete execution in the modular domain.
    #[test]
    fn random_1d_stencils_lift_and_their_summaries_hold(
        offsets in proptest::collection::btree_set(-3i64..=3, 1..=4),
        weight_bits in proptest::collection::vec(1u8..=4, 4),
    ) {
        let offsets: Vec<i64> = offsets.into_iter().collect();
        let weights: Vec<f64> = offsets
            .iter()
            .enumerate()
            .map(|(k, _)| weight_bits[k % weight_bits.len()] as f64 * 0.25)
            .collect();
        let source = stencil_source(&offsets, &weights);
        let mut stng = Stng::new();
        stng.config.prover.max_attempts = 800;
        let report = stng.lift_source(&source).unwrap();
        prop_assert_eq!(report.translated(), 1, "stencil should lift: {}", source);
        let kernel_report = &report.kernels[0];
        let kernel = kernel_report.kernel.as_ref().unwrap();
        let KernelOutcome::Translated { post, .. } = &kernel_report.outcome else {
            return Err(TestCaseError::fail("expected translation"));
        };

        // Check the summary against an independent concrete execution.
        let n = 9i64;
        let mut state: State<ModInt> = State::new();
        state.set_int("n", n).set_int("i", 0);
        state.set_array("a", ArrayData::new(vec![(-3, n)], ModInt::new(0)));
        state.set_array(
            "b",
            ArrayData::from_fn(vec![(-3, n)], |ix| ModInt::new((3 * ix[0] + 5).rem_euclid(MOD_FIELD))),
        );
        run_kernel(kernel, &mut state).unwrap();
        prop_assert!(eval_pred(&post.to_pred(), &mut state).unwrap());
    }

    /// The modular field used during synthesis really is a field: every
    /// non-zero element has a multiplicative inverse and the ring laws hold.
    #[test]
    fn mod_field_laws(a in 0i64..100, b in 0i64..100, c in 0i64..100) {
        let (x, y, z) = (ModInt::new(a), ModInt::new(b), ModInt::new(c));
        prop_assert_eq!(x.add(&y).mul(&z), x.mul(&z).add(&y.mul(&z)));
        prop_assert_eq!(x.sub(&x), ModInt::new(0));
        if y != ModInt::new(0) {
            prop_assert_eq!(x.mul(&y).div(&y), x);
        }
    }
}
