//! Property-based tests: for randomly generated pointwise stencils, the
//! lifted summary must agree with the original program, and the predicate
//! evaluation/verification machinery must respect its invariants.
//!
//! The properties are hand-rolled (the build environment has no crates.io
//! access for proptest): a seeded SplitMix64 generator drives a fixed number
//! of cases, so failures are reproducible from the printed case description.

use stng::pipeline::{KernelOutcome, Stng};
use stng_ir::interp::{run_kernel, ArrayData, State};
use stng_ir::value::{DataValue, ModInt, MOD_FIELD};
use stng_pred::eval::eval_pred;

/// Minimal deterministic generator for the properties below.
struct Cases {
    state: u64,
}

impl Cases {
    fn new(seed: u64) -> Cases {
        Cases { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo + 1) as u64) as i64
    }
}

/// Generates a random 1D stencil kernel: a weighted sum of reads of `b` at
/// small offsets.
fn stencil_source(offsets: &[i64], weights: &[f64]) -> String {
    let terms: Vec<String> = offsets
        .iter()
        .zip(weights)
        .map(|(off, w)| {
            let ix = match off.cmp(&0) {
                std::cmp::Ordering::Equal => "i".to_string(),
                std::cmp::Ordering::Greater => format!("i+{off}"),
                std::cmp::Ordering::Less => format!("i{off}"),
            };
            format!("{w:.2} * b({ix})")
        })
        .collect();
    format!(
        r#"
procedure randsten(n, a, b)
  real, dimension(-3:n) :: a
  real, dimension(-3:n) :: b
  integer :: i
  do i = 1, n-3
    a(i) = {}
  enddo
end procedure
"#,
        terms.join(" + ")
    )
}

/// Every randomly generated pointwise stencil lifts, and its postcondition
/// holds on a concrete execution in the modular domain.
#[test]
fn random_1d_stencils_lift_and_their_summaries_hold() {
    let mut cases = Cases::new(0x57e_9c11);
    for case in 0..12 {
        // 1–4 distinct offsets in -3..=3, quarter-step weights.
        let mut offsets = std::collections::BTreeSet::new();
        let count = cases.in_range(1, 4);
        while (offsets.len() as i64) < count {
            offsets.insert(cases.in_range(-3, 3));
        }
        let offsets: Vec<i64> = offsets.into_iter().collect();
        let weights: Vec<f64> = offsets
            .iter()
            .map(|_| cases.in_range(1, 4) as f64 * 0.25)
            .collect();
        let source = stencil_source(&offsets, &weights);
        let mut stng = Stng::new();
        stng.config.prover.max_attempts = 800;
        let report = stng.lift_source(&source).unwrap();
        assert_eq!(
            report.translated(),
            1,
            "case {case}: stencil should lift: {source}"
        );
        let kernel_report = &report.kernels[0];
        let kernel = kernel_report.kernel.as_ref().unwrap();
        let KernelOutcome::Translated { post, .. } = &kernel_report.outcome else {
            panic!("case {case}: expected translation")
        };

        // Check the summary against an independent concrete execution.
        let n = 9i64;
        let mut state: State<ModInt> = State::new();
        state.set_int("n", n).set_int("i", 0);
        state.set_array("a", ArrayData::new(vec![(-3, n)], ModInt::new(0)));
        state.set_array(
            "b",
            ArrayData::from_fn(vec![(-3, n)], |ix| {
                ModInt::new((3 * ix[0] + 5).rem_euclid(MOD_FIELD))
            }),
        );
        run_kernel(kernel, &mut state).unwrap();
        assert!(
            eval_pred(&post.to_pred(), &mut state).unwrap(),
            "case {case}: postcondition must hold on a concrete run: {source}"
        );
    }
}

/// The modular field used during synthesis really is a field: every non-zero
/// element has a multiplicative inverse and the ring laws hold.
#[test]
fn mod_field_laws() {
    let mut cases = Cases::new(0xf1e1d);
    for _ in 0..200 {
        let (a, b, c) = (
            cases.in_range(0, 99),
            cases.in_range(0, 99),
            cases.in_range(0, 99),
        );
        let (x, y, z) = (ModInt::new(a), ModInt::new(b), ModInt::new(c));
        assert_eq!(x.add(&y).mul(&z), x.mul(&z).add(&y.mul(&z)));
        assert_eq!(x.sub(&x), ModInt::new(0));
        if y != ModInt::new(0) {
            assert_eq!(x.mul(&y).div(&y), x);
        }
    }
}
